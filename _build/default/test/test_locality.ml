(* Tests for Fmtk_locality: Gaifman graphs/neighborhoods, Hanf and Gaifman
   locality, BNDP, the bounded-degree evaluator, and local sentences —
   §3.4–3.5 of the paper. *)

module Signature = Fmtk_logic.Signature
module Parser = Fmtk_logic.Parser
module Formula = Fmtk_logic.Formula
module Structure = Fmtk_structure.Structure
module Tuple = Fmtk_structure.Tuple
module Iso = Fmtk_structure.Iso
module Graph = Fmtk_structure.Graph
module Gen = Fmtk_structure.Gen
module Eval = Fmtk_eval.Eval
module Gaifman = Fmtk_locality.Gaifman
module Neighborhood = Fmtk_locality.Neighborhood
module Hanf = Fmtk_locality.Hanf
module Gaifman_local = Fmtk_locality.Gaifman_local
module Bndp = Fmtk_locality.Bndp
module Bounded_degree = Fmtk_locality.Bounded_degree
module Local_sentence = Fmtk_locality.Local_sentence

let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg

let graph_of edges ~size =
  Structure.make Signature.graph ~size
    [ ("E", List.map (fun (u, v) -> [| u; v |]) edges) ]

(* ---------- Gaifman graph ---------- *)

let test_gaifman_adjacency () =
  (* A ternary tuple makes all its elements pairwise adjacent. *)
  let sg = Signature.make [ ("R", 3) ] in
  let s = Structure.make sg ~size:4 [ ("R", [ [| 0; 1; 2 |] ]) ] in
  let adj = Gaifman.adjacency s in
  checkb "0~1" true (List.mem 1 adj.(0));
  checkb "0~2" true (List.mem 2 adj.(0));
  checkb "1~2" true (List.mem 2 adj.(1));
  checkb "3 isolated" true (adj.(3) = []);
  (* Orientation is forgotten. *)
  let g = Gen.successor 3 in
  let adj = Gaifman.adjacency g in
  checkb "undirected" true (List.mem 0 adj.(1) && List.mem 1 adj.(0))

let test_distance_and_ball () =
  let chain = Gen.path 7 in
  checki "distance along chain" 4 (Gaifman.distance chain 1 5);
  checkb "ball radius 2 around 3" true (Gaifman.ball chain 2 [ 3 ] = [ 1; 2; 3; 4; 5 ]);
  checkb "ball of pair" true
    (Gaifman.ball chain 1 [ 0; 6 ] = [ 0; 1; 5; 6 ]);
  let two = Gen.union_of [ Gen.path 3; Gen.path 3 ] in
  checkb "disconnected distance" true (Gaifman.distance two 0 3 = max_int);
  checki "diameter of chain" 6 (Gaifman.diameter chain);
  checki "gaifman degree of chain" 2 (Gaifman.degree chain)

let test_neighborhood_pinning () =
  let chain = Gen.path 9 in
  (* Interior points have isomorphic 2-neighborhoods; endpoint doesn't. *)
  let n_mid = Gaifman.neighborhood chain 2 [ 4 ] in
  let n_mid2 = Gaifman.neighborhood chain 2 [ 3 ] in
  let n_end = Gaifman.neighborhood chain 2 [ 0 ] in
  checkb "interior ≅ interior" true (Iso.isomorphic n_mid n_mid2);
  checkb "endpoint ≇ interior" false (Iso.isomorphic n_mid n_end);
  (* Pinning matters: same ball, different pinned point. *)
  let p = Gaifman.neighborhood chain 1 [ 1 ] in
  let q = Gaifman.neighborhood chain 1 [ 0 ] in
  checkb "different pin" false (Iso.isomorphic p q)

(* ---------- Neighborhood census ---------- *)

let test_census_chain () =
  let reg = Neighborhood.create_registry () in
  let census = Neighborhood.census reg (Gen.path 10) ~radius:1 in
  (* Radius-1 types on a chain: left end, interior, right end. *)
  checki "three types" 3 (List.length census);
  let counts = List.sort compare (List.map snd census) in
  checkb "counts 1,1,8" true (counts = [ 1; 1; 8 ])

let test_census_cycle_uniform () =
  let reg = Neighborhood.create_registry () in
  let census = Neighborhood.census reg (Gen.cycle 8) ~radius:2 in
  checki "cycles are homogeneous" 1 (List.length census);
  checkb "all 8 nodes" true (List.map snd census = [ 8 ])

let test_census_shared_registry () =
  (* Two cycles of length m vs one of length 2m: same single type. *)
  let reg = Neighborhood.create_registry () in
  let c1 = Neighborhood.census reg (Gen.union_of [ Gen.cycle 7; Gen.cycle 7 ]) ~radius:2 in
  let c2 = Neighborhood.census reg (Gen.cycle 14) ~radius:2 in
  checkb "identical censuses" true (c1 = c2)

let test_registry_ablation () =
  (* Bucketing off must give the same classification. *)
  let census_with bucketing =
    let reg = Neighborhood.create_registry ~bucketing () in
    Neighborhood.census reg (Gen.path 8) ~radius:1
  in
  checkb "same census" true
    (List.map snd (census_with true) = List.map snd (census_with false))

(* ---------- Hanf locality (Theorem 3.8, slide 60) ---------- *)

let test_hanf_two_cycles () =
  (* The canonical example: 2 cycles of length m ⇆r one cycle of 2m for
     m > 2r+1; CONN distinguishes them. *)
  let r = 2 in
  let m = 7 in
  let g1 = Gen.union_of [ Gen.cycle m; Gen.cycle m ] in
  let g2 = Gen.cycle (2 * m) in
  checkb "⇆2 holds" true (Hanf.equiv ~radius:r g1 g2);
  checkb "CONN differs" true (Graph.connected g2 && not (Graph.connected g1));
  checkb "violation found" true
    (Hanf.hanf_local_violation ~radius:r Graph.connected [ (g1, g2) ] <> None)

let test_hanf_radius_sensitivity () =
  (* With m <= 2r+1 the neighborhoods see around the cycle: ⇆r fails. *)
  let r = 2 in
  let m = 4 in
  let g1 = Gen.union_of [ Gen.cycle m; Gen.cycle m ] in
  let g2 = Gen.cycle (2 * m) in
  checkb "⇆2 fails on short cycles" false (Hanf.equiv ~radius:r g1 g2)

let test_hanf_tree_example () =
  (* The paper's tree example: chain of 2m vs chain of m ⊎ cycle of m are
     ⇆r-equivalent for m > 2r+1 (a cycle node's r-ball is a path pinned in
     the middle, same as a chain interior), yet only the first is a tree —
     so tree-ness is not Hanf-local. *)
  let m = 8 in
  let g1 = Gen.path (2 * m) in
  let g2 = Gen.union_of [ Gen.path m; Gen.cycle m ] in
  checkb "sizes equal" true (Structure.size g1 = Structure.size g2);
  List.iter
    (fun r ->
      checkb (Printf.sprintf "⇆%d holds (m > 2r+1)" r) true
        (Hanf.equiv ~radius:r g1 g2))
    [ 1; 2 ];
  checkb "tree-ness differs" true (Graph.is_tree g1 && not (Graph.is_tree g2));
  checkb "violation certified" true
    (Hanf.hanf_local_violation ~radius:1 Graph.is_tree [ (g1, g2) ] <> None)

let test_threshold_hanf () =
  (* Two big cliques vs one: every node's 1-ball is a clique; counts differ
     but both exceed a small threshold. *)
  let g1 = Gen.complete 6 and g2 = Gen.complete 6 in
  checkb "same structure trivially" true (Hanf.threshold_equiv ~threshold:2 ~radius:1 g1 g2);
  (* Chains of different length: interior counts 8 vs 18 both >= m=3;
     endpoint counts equal (2). *)
  let c1 = Gen.path 10 and c2 = Gen.path 20 in
  checkb "⇆*3,1 holds across sizes" true
    (Hanf.threshold_equiv ~threshold:3 ~radius:1 c1 c2);
  checkb "⇆ (exact) fails across sizes" false (Hanf.equiv ~radius:1 c1 c2);
  checkb "⇆*15,1 fails (interior counts 8 vs 18)" false
    (Hanf.threshold_equiv ~threshold:15 ~radius:1 c1 c2)

let test_threshold_transfer () =
  (* Theorem 3.10 consequence: chains long enough to be ⇆*m,r-equivalent
     agree on qr-2 sentences. *)
  let phi = Parser.parse_exn "forall x. exists y. E(x,y)" in
  let q = Formula.quantifier_rank phi in
  let r = Hanf.fo_radius ~rank:q in
  let m = Hanf.fo_threshold ~rank:q ~degree:2 in
  let c1 = Gen.path 40 and c2 = Gen.path 50 in
  if Hanf.threshold_equiv ~threshold:m ~radius:r c1 c2 then
    checkb "agreement on qr-2 sentence" (Eval.sat c1 phi) (Eval.sat c2 phi)
  else
    (* The conservative threshold may simply not hold at these sizes; the
       theorem is then vacuous — record that explicitly. *)
    checkb "threshold not reached (vacuous)" true true

(* ---------- m-ary Hanf locality (Hella–Libkin, the paper's [21]) ------ *)

let test_pointed_equivalence () =
  (* On one long chain, (a, b) and (a', b') with the same gap pattern far
     from the ends are pointed-equivalent. *)
  let chain = Gen.path 14 in
  checkb "same shape tuples" true
    (Hanf.equiv_pointed ~radius:1 (chain, [ 4; 6 ]) (chain, [ 5; 7 ]));
  checkb "gap 2 vs gap 3 differ" false
    (Hanf.equiv_pointed ~radius:1 (chain, [ 4; 6 ]) (chain, [ 5; 8 ]));
  (* The TC argument's pair: (a, b) vs (b, a) are pointed-equivalent only
     when the pins are more than 2(2r+1) apart — otherwise a midpoint c
     bridges both pins and its merged neighborhood reveals the tuple's
     orientation. On a 14-chain with gap 6 (= 2(2r+1)) that midpoint
     exists and distinguishes: *)
  checkb "gap 2(2r+1): midpoint c reveals orientation" false
    (Hanf.equiv_pointed ~radius:1 (chain, [ 4; 10 ]) (chain, [ 10; 4 ]));
  (* With gap 9 > 2(2r+1) on a 20-chain, no c sees both pins: *)
  let long = Gen.path 20 in
  checkb "(a,b) ⇆1 (b,a) with pins far apart" true
    (Hanf.equiv_pointed ~radius:1 (long, [ 5; 14 ]) (long, [ 14; 5 ]));
  checkb "different sizes rejected" false
    (Hanf.equiv_pointed ~radius:1 (Gen.path 5, [ 0 ]) (Gen.path 6, [ 0 ]))

let test_mary_hanf_tc () =
  (* TC violates m-ary Hanf locality: on a single long chain, (a,b) vs
     (b,a)-shaped tuples with the pins far apart share pointed censuses
     but TC distinguishes. *)
  let chain = Gen.path 20 in
  match
    Hanf.mary_violation ~arity:2 ~radius:1 Graph.transitive_closure
      (chain, chain)
  with
  | None -> Alcotest.fail "expected an m-ary Hanf violation for TC"
  | Some (a, b) ->
      checkb "pointed-equivalent" true
        (Hanf.equiv_pointed ~radius:1 (chain, a) (chain, b));
      let tc = Graph.transitive_closure chain in
      checkb "TC distinguishes" true
        (Tuple.Set.mem (Array.of_list a) tc
        <> Tuple.Set.mem (Array.of_list b) tc)

let test_mary_hanf_fo_passes () =
  (* The FO control query passes m-ary Hanf on the same witness. *)
  let chain = Gen.path 10 in
  let path2 s =
    Eval.definable_relation s (Parser.parse_exn "exists z. E(x,z) & E(z,y)")
      ~vars:[ "x"; "y" ]
  in
  checkb "path2 has no m-ary Hanf violation" true
    (Hanf.mary_violation ~arity:2 ~radius:3 path2 (chain, chain) = None)

(* ---------- Gaifman locality (Theorem 3.6, slide 58) ---------- *)

let tc_query s = Graph.transitive_closure s

let test_gaifman_tc_violation () =
  (* Long chain: (a,b) vs (b,a) with isomorphic 1-neighborhoods; TC
     contains (a,b) but not (b,a). *)
  let chain = Gen.path 12 in
  match Gaifman_local.violation ~arity:2 ~radius:1 tc_query chain with
  | None -> Alcotest.fail "expected a Gaifman violation for TC"
  | Some (a, b) ->
      let nb tup = Gaifman.neighborhood chain 1 tup in
      checkb "neighborhoods isomorphic" true (Iso.isomorphic (nb a) (nb b));
      let tc = tc_query chain in
      checkb "TC distinguishes" true
        (Tuple.Set.mem (Array.of_list a) tc
         && not (Tuple.Set.mem (Array.of_list b) tc))

let test_gaifman_fo_queries_pass () =
  (* FO queries of qr 1 are Gaifman-local at their radius on the test
     family. path2 = exists z. E(x,z) & E(z,y) has qr 1, radius (7-1)/2=3. *)
  let path2 s =
    Eval.definable_relation s (Parser.parse_exn "exists z. E(x,z) & E(z,y)")
      ~vars:[ "x"; "y" ]
  in
  let family = [ Gen.path 10; Gen.cycle 9; Gen.binary_tree 3 ] in
  checkb "path2 is Gaifman-local at radius 3" true
    (Gaifman_local.holds_on ~arity:2 ~radius:(Gaifman_local.fo_radius ~rank:1)
       path2 family)

let test_gaifman_radius_monotone () =
  (* Locality at radius r implies locality at radius r' >= r (finer
     neighborhoods distinguish more tuples). *)
  let q s =
    Eval.definable_relation s (Parser.parse_exn "E(x,y) & E(y,x)")
      ~vars:[ "x"; "y" ]
  in
  let fam = [ Gen.cycle 8; Gen.path 8 ] in
  List.iter
    (fun r ->
      checkb
        (Printf.sprintf "symmetric-pair local at radius %d" r)
        true
        (Gaifman_local.holds_on ~arity:2 ~radius:r q fam))
    [ 1; 2; 3 ]

(* ---------- BNDP (Theorem 3.4, slide 55) ---------- *)

let test_bndp_tc_explodes () =
  (* TC of a successor chain realizes ~n distinct degrees. *)
  List.iter
    (fun n ->
      let c = Bndp.output_degree_count tc_query (Gen.successor n) in
      checkb (Printf.sprintf "TC degrees grow (n=%d)" n) true (c >= n - 1))
    [ 4; 8; 12 ];
  checkb "family violates BNDP proxy" false
    (Bndp.bounded tc_query (List.map Gen.successor [ 4; 8; 12; 16 ]))

let test_bndp_sg_explodes () =
  (* Same-generation on the full binary tree realizes degrees 1,2,4,..,2^d. *)
  let sg_query s = Fmtk_datalog.Programs.sg_of s in
  let out d = Bndp.output_degree_count sg_query (Gen.binary_tree d) in
  checkb "deeper tree, more degrees" true (out 3 > out 2 && out 2 > out 1)

let test_bndp_fo_bounded () =
  let path2 s =
    Eval.definable_relation s (Parser.parse_exn "exists z. E(x,z) & E(z,y)")
      ~vars:[ "x"; "y" ]
  in
  let family = List.map Gen.successor [ 4; 8; 16; 32 ] in
  checkb "FO query keeps degrees bounded" true (Bndp.bounded path2 family);
  List.iter
    (fun s ->
      checkb "path2 output degrees small" true
        (Bndp.output_degree_count path2 s <= 3))
    family

(* ---------- Bounded-degree evaluator (Theorems 3.10/3.11) ---------- *)

let test_bounded_degree_agrees () =
  let phi = Parser.parse_exn "forall x. exists y. E(x,y)" in
  let ev = Bounded_degree.make phi ~degree_bound:4 in
  let family =
    List.concat_map (fun n -> [ Gen.path n; Gen.cycle n ]) [ 5; 8; 11 ]
  in
  List.iter
    (fun s ->
      checkb "cached = naive" (Eval.sat s phi) (Bounded_degree.eval ev s))
    family

let test_bounded_degree_cache_hits () =
  let phi = Parser.parse_exn "exists x. E(x,x)" in
  (* Override radius/threshold for cache-granularity: qr 1 defaults are
     already tiny. *)
  let ev = Bounded_degree.make phi ~degree_bound:4 in
  (* Long cycles share their truncated census: the second evaluation must
     hit the cache. *)
  ignore (Bounded_degree.eval ev (Gen.cycle 30));
  ignore (Bounded_degree.eval ev (Gen.cycle 40));
  let hits, misses = Bounded_degree.cache_stats ev in
  checki "one miss" 1 misses;
  checki "one hit" 1 hits

let test_bounded_degree_guard () =
  let phi = Parser.parse_exn "exists x. E(x,x)" in
  let ev = Bounded_degree.make phi ~degree_bound:2 in
  try
    ignore (Bounded_degree.eval ev (Gen.complete 5));
    Alcotest.fail "expected degree-bound violation"
  with Invalid_argument _ -> ()

let test_bounded_degree_soundness_sweep () =
  (* Random bounded-degree graphs: cached evaluator must agree with naive
     on every input, including cache hits. *)
  let rng = Random.State.make [| 7 |] in
  let phi = Parser.parse_exn "exists x y. E(x,y) & E(y,x)" in
  let ev = Bounded_degree.make phi ~degree_bound:3 in
  for _ = 1 to 20 do
    let g = Gen.bounded_degree_graph ~rng 14 3 in
    checkb "sound on random input" (Eval.sat g phi) (Bounded_degree.eval ev g)
  done

(* ---------- Local sentences (Theorem 3.12) ---------- *)

let test_holds_locally () =
  let chain = Gen.path 9 in
  (* "x has an out-neighbour" holds locally at interior points. *)
  let phi = Parser.parse_exn "exists y. E(x,y)" in
  checkb "interior" true (Local_sentence.holds_locally chain ~radius:1 ~formula:phi 4);
  checkb "right endpoint" false
    (Local_sentence.holds_locally chain ~radius:1 ~formula:phi 8);
  (* Local evaluation is genuinely restricted to the ball: a loop at node 0
     is invisible from the 1-ball around node 4, though visible globally. *)
  let with_loop =
    Structure.with_rel chain "E" 2
      (Tuple.Set.add [| 0; 0 |] (Structure.rel chain "E"))
  in
  let loop_exists = Parser.parse_exn "exists y. E(y,y)" in
  checkb "distant loop invisible locally" false
    (Local_sentence.holds_locally with_loop ~radius:1 ~formula:loop_exists 4);
  checkb "but true in the full structure" true (Eval.sat with_loop loop_exists)

let test_basic_local_sentence () =
  let has_succ = Parser.parse_exn "exists y. E(x,y)" in
  (* Two scattered vertices with out-edges at distance > 2 exist on a long
     chain but not a short one. *)
  let b = { Local_sentence.count = 2; radius = 1; formula = has_succ } in
  checkb "long chain" true (Local_sentence.eval_basic (Gen.path 8) b);
  checkb "short chain" false (Local_sentence.eval_basic (Gen.path 3) b);
  (* Combination with negation. *)
  let c =
    Local_sentence.Neg (Local_sentence.Basic { b with count = 3 })
  in
  checkb "no 3 scattered on path 6" true
    (Local_sentence.eval_combination (Gen.path 6) c)

let test_basic_local_matches_fo () =
  (* The basic local sentence 'there exist >= 2 vertices with loops at
     distance > 2' against a hand-rolled FO equivalent on small graphs. *)
  let loop = Parser.parse_exn "E(x,x)" in
  let b = { Local_sentence.count = 2; radius = 1; formula = loop } in
  let check_graph edges size expected =
    let g = graph_of edges ~size in
    checkb "basic local sentence" expected (Local_sentence.eval_basic g b)
  in
  (* Two loops far apart on a chain of 6: 0 and 5. *)
  check_graph [ (0, 0); (5, 5); (0, 1); (1, 2); (2, 3); (3, 4); (4, 5) ] 6 true;
  (* Two loops adjacent: distance 1, not scattered. *)
  check_graph [ (0, 0); (1, 1); (0, 1) ] 3 false;
  (* Isolated loops in different components: infinitely far. *)
  check_graph [ (0, 0); (1, 1) ] 2 true

(* ---------- Theorem 3.9: hierarchy ---------- *)

let test_hierarchy_on_zoo () =
  (* Every query in the zoo that is Hanf-local on the sample family is also
     Gaifman-local there, and every Gaifman-local one satisfies the BNDP —
     checked contrapositively via the non-examples: TC fails Gaifman and
     fails BNDP; CONN fails Hanf. *)
  let chain = Gen.path 12 in
  let tc_gaifman_fails =
    Gaifman_local.violation ~arity:2 ~radius:1 tc_query chain <> None
  in
  let tc_bndp_fails =
    not (Bndp.bounded tc_query (List.map Gen.successor [ 4; 8; 16 ]))
  in
  checkb "TC fails Gaifman and BNDP together" true
    (tc_gaifman_fails && tc_bndp_fails);
  (* path2: passes all three levels. *)
  let path2 s =
    Eval.definable_relation s (Parser.parse_exn "exists z. E(x,z) & E(z,y)")
      ~vars:[ "x"; "y" ]
  in
  checkb "path2 Gaifman-local" true
    (Gaifman_local.holds_on ~arity:2 ~radius:3 path2 [ chain ]);
  checkb "path2 BNDP" true (Bndp.bounded path2 (List.map Gen.successor [ 4; 8; 16 ]))

let () =
  Alcotest.run "fmtk_locality"
    [
      ( "gaifman",
        [
          Alcotest.test_case "adjacency" `Quick test_gaifman_adjacency;
          Alcotest.test_case "distance and balls" `Quick test_distance_and_ball;
          Alcotest.test_case "neighborhood pinning" `Quick test_neighborhood_pinning;
        ] );
      ( "census",
        [
          Alcotest.test_case "chain" `Quick test_census_chain;
          Alcotest.test_case "cycle uniform" `Quick test_census_cycle_uniform;
          Alcotest.test_case "shared registry" `Quick test_census_shared_registry;
          Alcotest.test_case "bucketing ablation" `Quick test_registry_ablation;
        ] );
      ( "hanf",
        [
          Alcotest.test_case "two cycles vs one" `Quick test_hanf_two_cycles;
          Alcotest.test_case "radius sensitivity" `Quick test_hanf_radius_sensitivity;
          Alcotest.test_case "tree example" `Quick test_hanf_tree_example;
          Alcotest.test_case "threshold variant" `Quick test_threshold_hanf;
          Alcotest.test_case "threshold transfer" `Slow test_threshold_transfer;
          Alcotest.test_case "pointed equivalence" `Quick test_pointed_equivalence;
          Alcotest.test_case "m-ary: TC violates" `Quick test_mary_hanf_tc;
          Alcotest.test_case "m-ary: FO passes" `Slow test_mary_hanf_fo_passes;
        ] );
      ( "gaifman-locality",
        [
          Alcotest.test_case "TC violation on chain" `Quick test_gaifman_tc_violation;
          Alcotest.test_case "FO queries pass" `Slow test_gaifman_fo_queries_pass;
          Alcotest.test_case "radius sweep" `Quick test_gaifman_radius_monotone;
        ] );
      ( "bndp",
        [
          Alcotest.test_case "TC explodes" `Quick test_bndp_tc_explodes;
          Alcotest.test_case "same-generation explodes" `Quick test_bndp_sg_explodes;
          Alcotest.test_case "FO stays bounded" `Quick test_bndp_fo_bounded;
        ] );
      ( "bounded-degree",
        [
          Alcotest.test_case "agrees with naive" `Quick test_bounded_degree_agrees;
          Alcotest.test_case "cache hits" `Quick test_bounded_degree_cache_hits;
          Alcotest.test_case "degree guard" `Quick test_bounded_degree_guard;
          Alcotest.test_case "random soundness sweep" `Quick test_bounded_degree_soundness_sweep;
        ] );
      ( "local-sentences",
        [
          Alcotest.test_case "relativized evaluation" `Quick test_holds_locally;
          Alcotest.test_case "basic local sentences" `Quick test_basic_local_sentence;
          Alcotest.test_case "scattered loops" `Quick test_basic_local_matches_fo;
        ] );
      ("hierarchy", [ Alcotest.test_case "Theorem 3.9 on the zoo" `Quick test_hierarchy_on_zoo ]);
    ]
