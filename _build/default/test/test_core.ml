(* Tests for the Fmtk core toolbox: the query zoo, the §3.3 reduction
   tricks, and the inexpressibility method runners. *)

module Queries = Fmtk.Queries
module Reductions = Fmtk.Reductions
module Method = Fmtk.Method
module Signature = Fmtk_logic.Signature
module Structure = Fmtk_structure.Structure
module Tuple = Fmtk_structure.Tuple
module Graph = Fmtk_structure.Graph
module Gen = Fmtk_structure.Gen
module Strategy = Fmtk_games.Strategy

let checkb msg = Alcotest.check Alcotest.bool msg
let rng () = Random.State.make [| 5 |]

let graph_of edges ~size =
  Structure.make Signature.graph ~size
    [ ("E", List.map (fun (u, v) -> [| u; v |]) edges) ]

(* ---------- Query zoo ---------- *)

let test_boolean_zoo () =
  checkb "even 4" true (Queries.even (Gen.set 4));
  checkb "odd 5" false (Queries.even (Gen.set 5));
  checkb "cycle connected" true (Queries.connected (Gen.cycle 4));
  checkb "two cycles not" false
    (Queries.connected (Gen.union_of [ Gen.cycle 3; Gen.cycle 3 ]));
  checkb "path acyclic" true (Queries.acyclic (Gen.path 4));
  checkb "binary tree is tree" true (Queries.is_tree (Gen.binary_tree 2))

let test_fo_controls () =
  let g = graph_of [ (0, 1); (0, 2); (1, 0) ] ~size:3 in
  checkb "dominator 0" true (Queries.dominator g);
  checkb "not symmetric" false (Queries.symmetric g);
  checkb "no isolated" false (Queries.isolated g);
  let g2 = graph_of [ (0, 1) ] ~size:3 in
  checkb "2 is isolated" true (Queries.isolated g2);
  checkb "path2 composition" true
    (Tuple.Set.mem [| 1; 1 |] (Queries.path2 g));
  checkb "symmetric pair" true
    (Tuple.Set.mem [| 0; 1 |] (Queries.symmetric_pair g))

let test_same_generation_query () =
  let t = Gen.binary_tree 2 in
  let sg = Queries.same_generation t in
  checkb "siblings same generation" true (Tuple.Set.mem [| 1; 2 |] sg);
  checkb "parent-child not" false (Tuple.Set.mem [| 0; 1 |] sg)

(* ---------- Reduction tricks (§3.3) ---------- *)

let test_conn_construction_parity () =
  for n = 2 to 24 do
    let g = Reductions.conn_construction (Gen.linear_order n) in
    checkb
      (Printf.sprintf "order %d: connected iff odd" n)
      (n mod 2 = 1) (Graph.connected g);
    let components = Graph.component_count g in
    if n mod 2 = 0 then
      checkb (Printf.sprintf "order %d: two components" n) true (components = 2)
  done

let test_conn_construction_matches_direct () =
  for n = 1 to 20 do
    checkb
      (Printf.sprintf "FO construction = direct at n=%d" n)
      true
      (Structure.equal
         (Reductions.conn_construction (Gen.linear_order n))
         (Reductions.conn_construction_direct (Gen.linear_order n)))
  done

let test_conn_construction_figure () =
  (* The slide-48 figure: 5 elements -> connected ring 0-2-4-1-3;
     6 elements -> two triangles {0,2,4} and {1,3,5}. *)
  let g5 = Reductions.conn_construction (Gen.linear_order 5) in
  List.iter
    (fun (u, v) ->
      checkb (Printf.sprintf "edge %d->%d" u v) true (Structure.mem g5 "E" [| u; v |]))
    [ (0, 2); (1, 3); (2, 4); (4, 1); (3, 0) ];
  checkb "5 edges total" true (Tuple.Set.cardinal (Structure.rel g5 "E") = 5);
  let g6 = Reductions.conn_construction (Gen.linear_order 6) in
  checkb "6: disconnected" false (Graph.connected g6);
  checkb "6: two components" true (Graph.component_count g6 = 2)

let test_acycl_construction_parity () =
  for n = 1 to 24 do
    let g = Reductions.acycl_construction (Gen.linear_order n) in
    checkb
      (Printf.sprintf "order %d: acyclic iff even" n)
      (n mod 2 = 0) (Graph.acyclic g);
    checkb
      (Printf.sprintf "FO = direct at n=%d" n)
      true
      (Structure.equal g (Reductions.acycl_construction_direct (Gen.linear_order n)))
  done

let test_connectivity_via_tc () =
  let graphs =
    [
      Gen.cycle 5;
      Gen.path 6;
      Gen.union_of [ Gen.cycle 3; Gen.cycle 4 ];
      graph_of [] ~size:3;
      graph_of [] ~size:1;
    ]
  in
  List.iter
    (fun g ->
      checkb "via-TC = direct connectivity"
        (Graph.connected g)
        (Reductions.connectivity_via_tc ~tc:Graph.transitive_closure g))
    graphs;
  (* Also with the Datalog TC as the oracle. *)
  List.iter
    (fun g ->
      checkb "via datalog TC"
        (Graph.connected g)
        (Reductions.connectivity_via_tc ~tc:Fmtk_datalog.Programs.tc_of g))
    graphs

(* ---------- Method runners ---------- *)

let test_game_method_even () =
  (* EVEN on sets: witnesses 2n vs 2n+1. *)
  for n = 1 to 3 do
    checkb
      (Printf.sprintf "EVEN certificate at rank %d" n)
      true
      (Method.game_rank ~rounds:n ~query:Queries.even (Gen.set (2 * n))
         (Gen.set ((2 * n) + 1))
      = Ok ())
  done;
  (* Sanity: too-small witnesses are rejected with the right message. *)
  checkb "spoiler wins on tiny witnesses" true
    (Method.game_rank ~rounds:3 ~query:Queries.even (Gen.set 2) (Gen.set 3)
    <> Ok ());
  (* Swapped witnesses fail premise 1. *)
  checkb "wrong witness order detected" true
    (Method.game_rank ~rounds:1 ~query:Queries.even (Gen.set 3) (Gen.set 2)
    = Error "witness A does not satisfy the query")

let test_game_method_even_orders () =
  (* EVEN over linear orders at rank 4 via the closed-form strategy:
     L16 vs L17 (both >= 2^4). *)
  let a = Gen.linear_order 16 and b = Gen.linear_order 17 in
  checkb "strategy-certified rank-4 EVEN(<)" true
    (Method.game_rank_with_strategy ~rounds:4 ~query:Queries.even
       ~strategy:(Strategy.linear_orders 16 17) a b
    = Ok ())

let test_hanf_method_conn () =
  let m = 7 in
  let g2m = Gen.cycle (2 * m) in
  let gmm = Gen.union_of [ Gen.cycle m; Gen.cycle m ] in
  checkb "CONN not Hanf-local at r=2" true
    (Method.hanf_violation ~radius:2 ~query:Queries.connected g2m gmm = Ok ());
  (* Wrong radius: neighborhoods see the whole cycle. *)
  checkb "radius too large" true
    (Method.hanf_violation ~radius:4 ~query:Queries.connected g2m gmm <> Ok ())

let test_gaifman_method_tc () =
  match
    Method.gaifman_violation ~arity:2 ~radius:1
      ~query:Queries.transitive_closure (Gen.path 12)
  with
  | Ok (_, _) -> ()
  | Error e -> Alcotest.fail e

let test_bndp_method () =
  let family = List.map Gen.successor [ 4; 8; 16 ] in
  checkb "TC violates BNDP" true
    (Method.bndp_violation ~degree_bound:1 ~must_exceed:6
       ~query:Queries.transitive_closure family
    = Ok ());
  checkb "path2 does not" true
    (Method.bndp_violation ~degree_bound:1 ~must_exceed:6 ~query:Queries.path2
       family
    <> Ok ())

let test_zero_one_method () =
  checkb "EVEN alternates" true
    (Method.zero_one_alternation ~rng:(rng ()) ~samples:4
       ~sizes:[ 2; 3; 4; 5; 6 ] ~query:Queries.even Signature.graph
    = Ok ());
  (* A query with a limit does not alternate. *)
  checkb "'has edge' does not alternate" true
    (Method.zero_one_alternation ~rng:(rng ()) ~samples:4 ~sizes:[ 4; 5; 6 ]
       ~query:(fun s -> Tuple.Set.cardinal (Structure.rel s "E") > 0)
       Signature.graph
    <> Ok ())

(* ---------- Order invariance (§3.6) ---------- *)

module Order_invariance = Fmtk.Order_invariance
module Parser = Fmtk_logic.Parser

let test_with_order () =
  let g = graph_of [ (0, 1) ] ~size:3 in
  let ordered = Order_invariance.with_order g ~perm:[| 2; 0; 1 |] in
  checkb "2 < 0 in chosen order" true (Structure.mem ordered "lt" [| 2; 0 |]);
  checkb "0 < 1" true (Structure.mem ordered "lt" [| 0; 1 |]);
  checkb "edge kept" true (Structure.mem ordered "E" [| 0; 1 |]);
  (try
     ignore (Order_invariance.with_order ordered ~perm:[| 0; 1; 2 |]);
     Alcotest.fail "double order must be rejected"
   with Invalid_argument _ -> ());
  try
    ignore (Order_invariance.with_order g ~perm:[| 0; 0; 2 |]);
    Alcotest.fail "non-permutation must be rejected"
  with Invalid_argument _ -> ()

let test_order_invariance () =
  let g = graph_of [ (0, 0); (1, 2) ] ~size:4 in
  (* Order-independent: a loop exists. *)
  let invariant = Parser.parse_exn "exists x. E(x,x)" in
  checkb "loop query invariant" true
    (Order_invariance.invariant_exhaustive g invariant = Some true);
  (* Order-dependent: the <-largest element has a loop. *)
  let dependent =
    Parser.parse_exn "exists x. (forall y. x = y | y < x) & E(x,x)"
  in
  checkb "largest-has-loop depends on the order" true
    (Order_invariance.invariant_exhaustive g dependent = Some false);
  (* Sampled agrees on the conclusive direction. *)
  checkb "sampled detects dependence" false
    (Order_invariance.invariant_sampled ~rng:(rng ()) ~trials:200 g dependent);
  checkb "sampled passes invariant query" true
    (Order_invariance.invariant_sampled ~rng:(rng ()) ~trials:50 g invariant);
  (* Large domains refuse exhaustive enumeration. *)
  checkb "too large for exhaustive" true
    (Order_invariance.invariant_exhaustive (Gen.set 9) invariant = None)

let test_verify_sampled () =
  let a = Gen.linear_order 16 and b = Gen.linear_order 17 in
  checkb "sampled verification of the order strategy" true
    (Strategy.verify_sampled ~rng:(rng ()) ~lines:2000 ~rounds:4 a b
       (Strategy.linear_orders 16 17)
    = None);
  (* A deliberately broken strategy loses quickly. *)
  let broken ~rounds_left:_ _pairs _side _e = 0 in
  checkb "broken strategy caught" true
    (Strategy.verify_sampled ~rng:(rng ()) ~lines:2000 ~rounds:2 a b broken
    <> None)

let () =
  Alcotest.run "fmtk_core"
    [
      ( "queries",
        [
          Alcotest.test_case "boolean zoo" `Quick test_boolean_zoo;
          Alcotest.test_case "FO controls" `Quick test_fo_controls;
          Alcotest.test_case "same generation" `Quick test_same_generation_query;
        ] );
      ( "reductions",
        [
          Alcotest.test_case "CONN parity" `Quick test_conn_construction_parity;
          Alcotest.test_case "FO = direct" `Quick test_conn_construction_matches_direct;
          Alcotest.test_case "slide-48 figure" `Quick test_conn_construction_figure;
          Alcotest.test_case "ACYCL parity" `Quick test_acycl_construction_parity;
          Alcotest.test_case "CONN via TC" `Quick test_connectivity_via_tc;
        ] );
      ( "methods",
        [
          Alcotest.test_case "game: EVEN on sets" `Quick test_game_method_even;
          Alcotest.test_case "game: EVEN on orders (strategy)" `Slow test_game_method_even_orders;
          Alcotest.test_case "hanf: CONN" `Quick test_hanf_method_conn;
          Alcotest.test_case "gaifman: TC" `Quick test_gaifman_method_tc;
          Alcotest.test_case "bndp: TC vs path2" `Quick test_bndp_method;
          Alcotest.test_case "0-1: EVEN" `Quick test_zero_one_method;
        ] );
      ( "order-invariance",
        [
          Alcotest.test_case "with_order" `Quick test_with_order;
          Alcotest.test_case "invariance" `Quick test_order_invariance;
          Alcotest.test_case "sampled strategy verify" `Quick test_verify_sampled;
        ] );
    ]
