(* Unit and property tests for Fmtk_logic: signatures, terms, formulas,
   transforms, parser. *)

module Signature = Fmtk_logic.Signature
module Term = Fmtk_logic.Term
module Formula = Fmtk_logic.Formula
module Transform = Fmtk_logic.Transform
module Parser = Fmtk_logic.Parser
open Formula

let check = Alcotest.check
let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg

(* ---------- Signature ---------- *)

let test_signature_basics () =
  let sg = Signature.make ~consts:[ "a"; "b" ] [ ("E", 2); ("P", 1) ] in
  checki "arity E" 2 (Signature.arity sg "E");
  checki "arity P" 1 (Signature.arity sg "P");
  checkb "mem E" true (Signature.mem_rel sg "E");
  checkb "not mem R" false (Signature.mem_rel sg "R");
  checkb "mem const a" true (Signature.mem_const sg "a");
  checkb "not mem const c" false (Signature.mem_const sg "c");
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "rels order" [ ("E", 2); ("P", 1) ] (Signature.rels sg)

let test_signature_dup () =
  Alcotest.check_raises "duplicate relation"
    (Invalid_argument "Signature.make: duplicate relation \"E\"") (fun () ->
      ignore (Signature.make [ ("E", 2); ("E", 1) ]))

let test_signature_union () =
  let a = Signature.make [ ("E", 2) ] in
  let b = Signature.make ~consts:[ "c" ] [ ("P", 1) ] in
  let u = Signature.union a b in
  checkb "union has both" true
    (Signature.mem_rel u "E" && Signature.mem_rel u "P" && Signature.mem_const u "c");
  Alcotest.check_raises "conflicting arity"
    (Invalid_argument "Signature.add_rel: \"E\" has arity 2, not 3") (fun () ->
      ignore (Signature.union a (Signature.make [ ("E", 3) ])))

let test_signature_builtin () =
  checki "graph sig E/2" 2 (Signature.arity Signature.graph "E");
  checki "order sig lt/2" 2 (Signature.arity Signature.order "lt");
  checkb "empty sig" true (Signature.rels Signature.empty = [])

(* ---------- Formula structural measures ---------- *)

let phi_example =
  (* forall x (exists w P(x,w) & exists y exists z R(x,y,z)) : qr 3 per
     slide 41 *)
  forall "x"
    (conj
       [
         exists "w" (rel "P" [ v "x"; v "w" ]);
         exists "y" (exists "z" (rel "R" [ v "x"; v "y"; v "z" ]));
       ])

let test_quantifier_rank () =
  checki "slide-41 example has qr 3" 3 (quantifier_rank phi_example);
  checki "atom qr 0" 0 (quantifier_rank (rel "E" [ v "x"; v "y" ]));
  checki "negation preserves qr" 1 (quantifier_rank (not_ (exists "x" True)));
  checki "at_least n has qr n" 5 (quantifier_rank (at_least 5));
  checki "at_most n has qr n+1" 6 (quantifier_rank (at_most 5))

let test_free_vars () =
  check (Alcotest.list Alcotest.string) "free vars of slide-41 example" []
    (free_vars phi_example);
  check (Alcotest.list Alcotest.string) "open formula"
    [ "x"; "y" ]
    (free_vars (And (rel "E" [ v "x"; v "y" ], exists "z" (Eq (v "z", v "x")))));
  checkb "sentence check" true (is_sentence (at_least 3));
  checkb "non-sentence" false (is_sentence (rel "P" [ v "x" ]))

let test_subst_capture () =
  (* (exists y. x = y)[x := y] must rename the bound y. *)
  let f = exists "y" (Eq (v "x", v "y")) in
  let g = subst "x" (v "y") f in
  match g with
  | Exists (y', Eq (Term.Var "y", Term.Var y'')) ->
      checkb "bound variable renamed" true (y' = y'' && y' <> "y")
  | _ -> Alcotest.failf "unexpected shape: %s" (to_string g)

let test_subst_noop () =
  let f = forall "x" (rel "P" [ v "x" ]) in
  checkb "subst under same binder is identity" true
    (equal f (subst "x" (v "z") f))

let test_wf () =
  let sg = Signature.make ~consts:[ "a" ] [ ("E", 2) ] in
  checkb "wf ok" true (wf sg (rel "E" [ v "x"; c "a" ]));
  checkb "bad arity" false (wf sg (rel "E" [ v "x" ]));
  checkb "unknown rel" false (wf sg (rel "R" [ v "x" ]));
  checkb "unknown const" false (wf sg (Eq (c "b", v "x")))

let test_rels_used () =
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "rels_used"
    [ ("P", 2); ("R", 3) ]
    (rels_used phi_example)

(* ---------- Transforms ---------- *)

let sg_graph = Signature.graph

(* Enumerate all graphs of size <= 3 for semantic equivalence checks. *)
let small_graphs =
  let graphs n =
    let pairs = ref [] in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        pairs := (i, j) :: !pairs
      done
    done;
    let pairs = Array.of_list !pairs in
    let m = Array.length pairs in
    List.init (1 lsl m) (fun mask ->
        let tuples = ref [] in
        Array.iteri
          (fun idx (i, j) ->
            if mask land (1 lsl idx) <> 0 then tuples := [| i; j |] :: !tuples)
          pairs;
        Fmtk_structure.Structure.make sg_graph ~size:n [ ("E", !tuples) ])
  in
  graphs 1 @ graphs 2

let semantically_equal f g =
  List.for_all
    (fun s ->
      let fv = free_vars f in
      if fv = [] then Fmtk_eval.Eval.sat s f = Fmtk_eval.Eval.sat s g
      else
        Fmtk_structure.Tuple.Set.equal
          (Fmtk_eval.Eval.definable_relation s f ~vars:fv)
          (Fmtk_eval.Eval.definable_relation s g ~vars:fv))
    small_graphs

let sample_formulas =
  [
    forall "x" (exists "y" (rel "E" [ v "x"; v "y" ]));
    not_ (forall "x" (rel "E" [ v "x"; v "x" ]));
    implies (exists "x" (rel "E" [ v "x"; v "x" ])) (at_least 2);
    iff (exists "x" (rel "E" [ v "x"; v "x" ])) (exists "y" (rel "E" [ v "y"; v "y" ]));
    exists "x" (forall "y" (disj [ Eq (v "x", v "y"); rel "E" [ v "x"; v "y" ] ]));
    forall "x" (implies (rel "E" [ v "x"; v "x" ]) False);
  ]

let test_nnf_semantics () =
  List.iter
    (fun f ->
      checkb
        (Printf.sprintf "nnf preserves %s" (to_string f))
        true
        (semantically_equal f (Transform.nnf f)))
    sample_formulas

let rec is_nnf = function
  | True | False | Eq _ | Rel _ -> true
  | Not (Eq _) | Not (Rel _) | Not True | Not False -> true
  | Not _ -> false
  | And (f, g) | Or (f, g) -> is_nnf f && is_nnf g
  | Implies _ | Iff _ -> false
  | Exists (_, f) | Forall (_, f) -> is_nnf f

let test_nnf_shape () =
  List.iter
    (fun f ->
      checkb
        (Printf.sprintf "nnf shape of %s" (to_string f))
        true
        (is_nnf (Transform.nnf f)))
    sample_formulas

let test_nnf_rank () =
  List.iter
    (fun f ->
      checki "nnf preserves quantifier rank" (quantifier_rank f)
        (quantifier_rank (Transform.nnf f)))
    sample_formulas

let rec is_prenex = function
  | Exists (_, f) | Forall (_, f) -> is_prenex f
  | f -> quantifier_rank f = 0

let test_prenex () =
  List.iter
    (fun f ->
      let p = Transform.prenex f in
      checkb (Printf.sprintf "prenex shape of %s" (to_string f)) true (is_prenex p);
      checkb
        (Printf.sprintf "prenex preserves %s" (to_string f))
        true (semantically_equal f p))
    sample_formulas

let test_simplify () =
  checkb "f & true" true (equal (Transform.simplify (And (at_least 2, True))) (at_least 2));
  checkb "f | true" true (equal (Transform.simplify (Or (at_least 2, True))) True);
  checkb "double negation" true
    (equal (Transform.simplify (Not (Not (rel "E" [ v "x"; v "x" ])))) (rel "E" [ v "x"; v "x" ]));
  checkb "exists true" true (equal (Transform.simplify (exists "x" True)) True);
  List.iter
    (fun f ->
      checkb "simplify preserves semantics" true
        (semantically_equal f (Transform.simplify f)))
    sample_formulas

let test_rename_apart () =
  let f = And (exists "x" (rel "E" [ v "x"; v "x" ]), exists "x" (rel "E" [ v "x"; v "x" ])) in
  let g = Transform.rename_apart f in
  checkb "semantics preserved" true (semantically_equal f g);
  (* All binders distinct. *)
  let rec binders = function
    | True | False | Eq _ | Rel _ -> []
    | Not f -> binders f
    | And (f, g) | Or (f, g) | Implies (f, g) | Iff (f, g) -> binders f @ binders g
    | Exists (x, f) | Forall (x, f) -> x :: binders f
  in
  let bs = binders g in
  checki "distinct binders" (List.length bs)
    (List.length (List.sort_uniq String.compare bs))

let test_relativize () =
  (* Relativizing to a guard turns ∃x ψ into ∃x (G(x) ∧ ψ) and ∀x ψ into
     ∀x (G(x) → ψ). *)
  let guard x = rel "P" [ v x ] in
  let g = Transform.relativize ~guard (exists "x" (rel "E" [ v "x"; v "x" ])) in
  checkb "exists guarded" true
    (equal g (exists "x" (And (rel "P" [ v "x" ], rel "E" [ v "x"; v "x" ]))));
  let h = Transform.relativize ~guard (forall "x" (rel "E" [ v "x"; v "x" ])) in
  checkb "forall guarded" true
    (equal h (forall "x" (Implies (rel "P" [ v "x" ], rel "E" [ v "x"; v "x" ]))));
  (* Semantics: on a structure where P holds of the whole domain,
     relativization changes nothing. *)
  let sg = Signature.make [ ("E", 2); ("P", 1) ] in
  let s =
    Fmtk_structure.Structure.make sg ~size:3
      [ ("E", [ [| 0; 1 |] ]); ("P", [ [| 0 |]; [| 1 |]; [| 2 |] ]) ]
  in
  let phi = forall "x" (exists "y" (disj [ rel "E" [ v "x"; v "y" ]; Eq (v "x", v "y") ])) in
  checkb "trivial guard preserves truth"
    (Fmtk_eval.Eval.sat s phi)
    (Fmtk_eval.Eval.sat s (Transform.relativize ~guard phi))

(* ---------- at_least / at_most / exactly ---------- *)

let test_counting_sentences () =
  let sets = List.map Fmtk_structure.Gen.set [ 0; 1; 2; 3; 4; 5 ] in
  List.iteri
    (fun n s ->
      if n > 0 then begin
        checkb
          (Printf.sprintf "at_least 3 on %d" n)
          (n >= 3)
          (Fmtk_eval.Eval.sat s (at_least 3));
        checkb
          (Printf.sprintf "at_most 2 on %d" n)
          (n <= 2)
          (Fmtk_eval.Eval.sat s (at_most 2));
        checkb
          (Printf.sprintf "exactly 4 on %d" n)
          (n = 4)
          (Fmtk_eval.Eval.sat s (exactly 4))
      end)
    sets

(* ---------- Parser ---------- *)

let roundtrip s = Parser.parse_exn s

let test_parser_basic () =
  checkb "atom" true (equal (roundtrip "E(x,y)") (rel "E" [ v "x"; v "y" ]));
  checkb "eq" true (equal (roundtrip "x = y") (Eq (v "x", v "y")));
  checkb "neq" true (equal (roundtrip "x != y") (neq (v "x") (v "y")));
  checkb "lt sugar" true (equal (roundtrip "x < y") (rel "lt" [ v "x"; v "y" ]));
  checkb "const" true (equal (roundtrip "'a = x") (Eq (c "a", v "x")));
  checkb "true/false" true
    (equal (roundtrip "true & false") (And (True, False)))

let test_parser_precedence () =
  checkb "& binds tighter than |" true
    (equal (roundtrip "E(x,x) | E(y,y) & E(z,z)")
       (Or (rel "E" [ v "x"; v "x" ], And (rel "E" [ v "y"; v "y" ], rel "E" [ v "z"; v "z" ]))));
  checkb "-> right assoc" true
    (equal (roundtrip "E(x,x) -> E(y,y) -> E(z,z)")
       (Implies (rel "E" [ v "x"; v "x" ], Implies (rel "E" [ v "y"; v "y" ], rel "E" [ v "z"; v "z" ]))));
  checkb "! binds tightest" true
    (equal (roundtrip "!E(x,x) & E(y,y)")
       (And (Not (rel "E" [ v "x"; v "x" ]), rel "E" [ v "y"; v "y" ])))

let test_parser_quantifiers () =
  checkb "multi binder" true
    (equal (roundtrip "exists x y. x != y") (exists "x" (exists "y" (neq (v "x") (v "y")))));
  checkb "quantifier scope extends right" true
    (equal
       (roundtrip "forall x. E(x,x) & E(x,x)")
       (forall "x" (And (rel "E" [ v "x"; v "x" ], rel "E" [ v "x"; v "x" ]))));
  checkb "parenthesized body" true
    (equal
       (roundtrip "(forall x. E(x,x)) & true")
       (And (forall "x" (rel "E" [ v "x"; v "x" ]), True)))

let test_parser_errors () =
  List.iter
    (fun s ->
      match Parser.parse s with
      | Ok f -> Alcotest.failf "expected failure for %S, got %s" s (to_string f)
      | Error _ -> ())
    [ "E(x,"; "exists . x = y"; "x ="; "(x = y"; "x = y)"; "E(x,y) &&"; "@" ]

let test_parser_pp_roundtrip () =
  (* Semantic roundtrip for graph formulas; structural for phi_example
     (it mentions P and R, which the small graphs don't interpret). *)
  List.iter
    (fun f ->
      let printed = to_string f in
      match Parser.parse printed with
      | Ok g ->
          checkb (Printf.sprintf "pp/parse roundtrip %s" printed) true
            (semantically_equal f g)
      | Error e -> Alcotest.failf "roundtrip parse failed: %s" e)
    sample_formulas;
  match Parser.parse (to_string phi_example) with
  | Ok g -> checkb "phi_example structural roundtrip" true (equal phi_example g)
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e

(* ---------- QCheck: random formula properties ---------- *)

let gen_formula : Formula.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let var = oneofl [ "x"; "y"; "z" ] in
  (* Depth-bounded: deep quantifier nests make semantic checks exponential. *)
  sized_size (int_range 0 6)
  @@ fix (fun self n ->
         if n <= 0 then
           oneof
             [
               return True;
               return False;
               map2 (fun a b -> Eq (v a, v b)) var var;
               map2 (fun a b -> rel "E" [ v a; v b ]) var var;
             ]
         else
           oneof
             [
               map not_ (self (n - 1));
               map2 (fun a b -> And (a, b)) (self (n / 2)) (self (n / 2));
               map2 (fun a b -> Or (a, b)) (self (n / 2)) (self (n / 2));
               map2 (fun a b -> Implies (a, b)) (self (n / 2)) (self (n / 2));
               map2 (fun x f -> exists x f) var (self (n - 1));
               map2 (fun x f -> forall x f) var (self (n - 1));
             ])

let closed f = Formula.exists_many (Formula.free_vars f) f

let prop_nnf =
  QCheck2.Test.make ~count:200 ~name:"nnf is NNF and preserves rank" gen_formula
    (fun f ->
      let g = Transform.nnf f in
      is_nnf g && quantifier_rank g = quantifier_rank f)

let prop_nnf_semantics =
  QCheck2.Test.make ~count:100 ~name:"nnf preserves semantics on small graphs"
    gen_formula (fun f ->
      let f = closed f in
      semantically_equal f (Transform.nnf f))

let prop_prenex_semantics =
  QCheck2.Test.make ~count:100 ~name:"prenex preserves semantics" gen_formula
    (fun f ->
      let f = closed f in
      semantically_equal f (Transform.prenex f))

let prop_simplify =
  QCheck2.Test.make ~count:100 ~name:"simplify shrinks and preserves" gen_formula
    (fun f ->
      let f = closed f in
      let g = Transform.simplify f in
      size g <= size f && semantically_equal f g)

let prop_parse_pp =
  QCheck2.Test.make ~count:100 ~name:"parse of pp is semantically equal"
    gen_formula (fun f ->
      match Parser.parse (to_string f) with
      | Ok g -> semantically_equal (closed f) (closed g)
      | Error _ -> false)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_nnf; prop_nnf_semantics; prop_prenex_semantics; prop_simplify; prop_parse_pp ]

let () =
  Alcotest.run "fmtk_logic"
    [
      ( "signature",
        [
          Alcotest.test_case "basics" `Quick test_signature_basics;
          Alcotest.test_case "duplicates rejected" `Quick test_signature_dup;
          Alcotest.test_case "union" `Quick test_signature_union;
          Alcotest.test_case "builtins" `Quick test_signature_builtin;
        ] );
      ( "formula",
        [
          Alcotest.test_case "quantifier rank" `Quick test_quantifier_rank;
          Alcotest.test_case "free variables" `Quick test_free_vars;
          Alcotest.test_case "capture-avoiding subst" `Quick test_subst_capture;
          Alcotest.test_case "subst under binder" `Quick test_subst_noop;
          Alcotest.test_case "well-formedness" `Quick test_wf;
          Alcotest.test_case "rels_used" `Quick test_rels_used;
          Alcotest.test_case "counting sentences" `Quick test_counting_sentences;
        ] );
      ( "transform",
        [
          Alcotest.test_case "nnf semantics" `Quick test_nnf_semantics;
          Alcotest.test_case "nnf shape" `Quick test_nnf_shape;
          Alcotest.test_case "nnf rank" `Quick test_nnf_rank;
          Alcotest.test_case "prenex" `Quick test_prenex;
          Alcotest.test_case "simplify" `Quick test_simplify;
          Alcotest.test_case "rename apart" `Quick test_rename_apart;
          Alcotest.test_case "relativize" `Quick test_relativize;
        ] );
      ( "parser",
        [
          Alcotest.test_case "basic" `Quick test_parser_basic;
          Alcotest.test_case "precedence" `Quick test_parser_precedence;
          Alcotest.test_case "quantifiers" `Quick test_parser_quantifiers;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "pp roundtrip" `Quick test_parser_pp_roundtrip;
        ] );
      ("properties", qcheck_cases);
    ]
