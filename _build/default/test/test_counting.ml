(* Tests for counting quantifiers (FO(Cnt)) and SQL-style aggregation,
   plus the rank-type classifier. *)

module Counting = Fmtk_counting.Counting
module Formula = Fmtk_logic.Formula
module Parser = Fmtk_logic.Parser
module Signature = Fmtk_logic.Signature
module Structure = Fmtk_structure.Structure
module Tuple = Fmtk_structure.Tuple
module Gen = Fmtk_structure.Gen
module Graph = Fmtk_structure.Graph
module Eval = Fmtk_eval.Eval
module Relation = Fmtk_db.Relation
module Aggregate = Fmtk_db.Aggregate
module Classify = Fmtk.Classify

let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg

let graph_of edges ~size =
  Structure.make Signature.graph ~size
    [ ("E", List.map (fun (u, v) -> [| u; v |]) edges) ]

(* ---------- Counting quantifiers: semantics ---------- *)

let fan k = graph_of (List.init k (fun i -> (0, i + 1))) ~size:(k + 1)

let test_count_semantics () =
  (* Vertex 0 of fan k has out-degree exactly k. *)
  for k = 1 to 4 do
    let g = fan k in
    for threshold = 0 to 5 do
      checkb
        (Printf.sprintf "fan %d has vertex of degree >= %d" k threshold)
        (threshold <= k)
        (Counting.sat g (Counting.degree_at_least_sentence threshold))
    done
  done

let test_count_zero_and_free () =
  let g = graph_of [] ~size:2 in
  checkb "geq 0 is trivially true" true
    (Counting.sat g (Counting.Count_geq (0, "x", Counting.False)));
  (try
     ignore (Counting.sat g (Counting.min_out_degree 1));
     Alcotest.fail "free variable must be rejected"
   with Invalid_argument _ -> ());
  checkb "of_fo embeds" true
    (Counting.sat g (Counting.of_fo (Parser.parse_exn "forall x. !E(x,x)")))

let test_rank_and_size () =
  let phi = Counting.degree_at_least_sentence 4 in
  checki "counting rank 2" 2 (Counting.rank phi);
  let expanded = Counting.expand phi in
  checki "expanded rank 5" 5 (Formula.quantifier_rank expanded);
  checkb "expansion is bigger" true
    (Formula.size expanded > 3 * Counting.size phi)

(* ---------- Elimination: expand preserves semantics ---------- *)

let test_expand_equivalent () =
  let structures =
    [ fan 1; fan 3; Gen.cycle 5; Gen.complete 4; graph_of [] ~size:3 ]
  in
  List.iter
    (fun k ->
      let phi = Counting.degree_at_least_sentence k in
      let fo = Counting.expand phi in
      List.iter
        (fun g ->
          checkb
            (Printf.sprintf "k=%d agrees" k)
            (Counting.sat g phi) (Eval.sat g fo))
        structures)
    [ 1; 2; 3 ]

let gen_counting : Counting.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let open Counting in
  let var = oneofl [ "x"; "y" ] in
  let t x = Fmtk_logic.Term.Var x in
  sized_size (int_range 0 4)
  @@ fix (fun self n ->
         if n <= 0 then
           oneof
             [
               map2 (fun a b -> Eq (t a, t b)) var var;
               map2 (fun a b -> Rel ("E", [ t a; t b ])) var var;
             ]
         else
           oneof
             [
               map (fun f -> Not f) (self (n - 1));
               map2 (fun a b -> And (a, b)) (self (n / 2)) (self (n / 2));
               map2 (fun a b -> Or (a, b)) (self (n / 2)) (self (n / 2));
               map2 (fun x f -> Exists (x, f)) var (self (n - 1));
               map2 (fun x f -> Forall (x, f)) var (self (n - 1));
               map3
                 (fun k x f -> Count_geq (k, x, f))
                 (int_range 0 3) var (self (n - 1));
             ])

let close_counting f =
  List.fold_right (fun x g -> Counting.Exists (x, g)) (Counting.free_vars f) f

let prop_expand =
  QCheck2.Test.make ~count:200 ~name:"expand preserves semantics"
    QCheck2.Gen.(
      pair gen_counting
        (let* n = int_range 1 5 in
         let* edges =
           list_size (int_range 0 (n * 2))
             (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
         in
         return (graph_of edges ~size:n)))
    (fun (phi, g) ->
      let phi = close_counting phi in
      Counting.sat g phi = Eval.sat g (Counting.expand phi))

(* ---------- Counting queries stay local ---------- *)

let test_counting_local () =
  (* φ(x) = "out-degree >= 2" is Gaifman-local with radius 1. *)
  let q s =
    let out = ref Tuple.Set.empty in
    List.iter
      (fun e ->
        if Counting.holds s (Counting.min_out_degree 2) ~env:[ ("x", e) ] then
          out := Tuple.Set.add [| e |] !out)
      (Structure.domain s);
    !out
  in
  checkb "min-degree-2 is 1-local" true
    (Fmtk_locality.Gaifman_local.holds_on ~arity:1 ~radius:1 q
       [ Gen.binary_tree 3; Gen.cycle 8; fan 3 ])

(* ---------- Aggregates ---------- *)

let sales =
  (* (customer, amount) *)
  Relation.make [ "cust"; "amount" ]
    [ [| 1; 10 |]; [| 1; 5 |]; [| 2; 7 |]; [| 3; 10 |]; [| 3; 2 |]; [| 3; 1 |] ]

let test_group_by_count () =
  let counts = Aggregate.group_by sales ~keys:[ "cust" ] ~op:Aggregate.Count ~into:"n" in
  Alcotest.(check (list string)) "schema" [ "cust"; "n" ] (Relation.attrs counts);
  checkb "customer 3 has 3 rows" true (Tuple.Set.mem [| 3; 3 |] (Relation.tuples counts));
  checkb "customer 2 has 1 row" true (Tuple.Set.mem [| 2; 1 |] (Relation.tuples counts));
  checki "three groups" 3 (Relation.cardinality counts)

let test_group_by_sum_min_max () =
  let sums = Aggregate.group_by sales ~keys:[ "cust" ] ~op:(Aggregate.Sum "amount") ~into:"total" in
  checkb "sum for 1" true (Tuple.Set.mem [| 1; 15 |] (Relation.tuples sums));
  checkb "sum for 3" true (Tuple.Set.mem [| 3; 13 |] (Relation.tuples sums));
  let mins = Aggregate.group_by sales ~keys:[ "cust" ] ~op:(Aggregate.Min "amount") ~into:"m" in
  checkb "min for 3" true (Tuple.Set.mem [| 3; 1 |] (Relation.tuples mins));
  let maxs = Aggregate.group_by sales ~keys:[ "cust" ] ~op:(Aggregate.Max "amount") ~into:"m" in
  checkb "max for 1" true (Tuple.Set.mem [| 1; 10 |] (Relation.tuples maxs))

let test_global_aggregate () =
  let total = Aggregate.group_by sales ~keys:[] ~op:(Aggregate.Sum "amount") ~into:"s" in
  checkb "global sum 35" true (Tuple.Set.mem [| 35 |] (Relation.tuples total));
  let empty = Relation.empty [ "a" ] in
  let zero = Aggregate.group_by empty ~keys:[] ~op:Aggregate.Count ~into:"n" in
  checkb "count of empty is 0" true (Tuple.Set.mem [| 0 |] (Relation.tuples zero));
  try
    ignore (Aggregate.group_by empty ~keys:[] ~op:(Aggregate.Sum "a") ~into:"s");
    Alcotest.fail "sum of empty must be rejected"
  with Invalid_argument _ -> ()

let test_having () =
  let counts = Aggregate.group_by sales ~keys:[ "cust" ] ~op:Aggregate.Count ~into:"n" in
  let big = Aggregate.having counts ~attr:"n" ~pred:(fun n -> n >= 2) in
  checki "two heavy customers" 2 (Relation.cardinality big);
  (* degree via aggregation = degree via counting quantifier *)
  let g = fan 3 in
  let edges = Relation.of_set [ "src"; "dst" ] (Structure.rel g "E") in
  let deg = Aggregate.group_by edges ~keys:[ "src" ] ~op:Aggregate.Count ~into:"d" in
  let heavy = Aggregate.having deg ~attr:"d" ~pred:(fun d -> d >= 2) in
  checkb "aggregation agrees with counting quantifier"
    (Relation.cardinality heavy > 0)
    (Counting.sat g (Counting.degree_at_least_sentence 2))

let test_aggregate_errors () =
  (try
     ignore (Aggregate.group_by sales ~keys:[ "zzz" ] ~op:Aggregate.Count ~into:"n");
     Alcotest.fail "unknown key"
   with Invalid_argument _ -> ());
  try
    ignore (Aggregate.group_by sales ~keys:[ "cust" ] ~op:Aggregate.Count ~into:"amount");
    Alcotest.fail "clashing output name"
  with Invalid_argument _ -> ()

(* ---------- Classifier ---------- *)

let test_classify_sets () =
  (* At rank 2, bare sets classify as: size 0 | size 1 | size >= 2. *)
  let classes =
    Classify.by_rank ~rank:2 (List.map Gen.set [ 0; 1; 2; 3; 4; 2 ])
  in
  checkb "0 alone" true (classes.(0) <> classes.(1) && classes.(0) <> classes.(2));
  checkb "1 alone" true (classes.(1) <> classes.(2));
  checkb "2,3,4 together" true
    (classes.(2) = classes.(3) && classes.(3) = classes.(4));
  checkb "duplicates same class" true (classes.(2) = classes.(5))

let test_classify_separators () =
  let ts = [ Gen.set 1; Gen.set 2; Gen.set 3 ] in
  let seps = Classify.separators ~rank:2 ts in
  (* 1 vs 2, 1 vs 3 and 2 vs 3 are all rank-2 distinguishable... except 2
     vs 3 which needs rank 3: classes at rank 2 are {1}, {2,3}. *)
  checki "two separated pairs" 2 (List.length seps);
  List.iter
    (fun (i, j, phi) ->
      checkb "phi true on left" true (Eval.sat (List.nth ts i) phi);
      checkb "phi false on right" false (Eval.sat (List.nth ts j) phi);
      checkb "rank bound" true (Formula.quantifier_rank phi <= 2))
    seps

let test_classify_graphs () =
  let classes =
    Classify.by_rank ~rank:2
      [ Gen.cycle 3; Gen.cycle 4; Gen.path 3; Gen.cycle 5; Graph.symmetric_closure (Gen.cycle 3) ]
  in
  checkb "cycle vs path differ" true (classes.(0) <> classes.(2));
  checkb "directed vs symmetric differ" true (classes.(0) <> classes.(4))

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_expand ]

let () =
  Alcotest.run "fmtk_counting"
    [
      ( "counting",
        [
          Alcotest.test_case "semantics" `Quick test_count_semantics;
          Alcotest.test_case "edge cases" `Quick test_count_zero_and_free;
          Alcotest.test_case "rank and size" `Quick test_rank_and_size;
          Alcotest.test_case "expansion equivalent" `Quick test_expand_equivalent;
          Alcotest.test_case "locality" `Quick test_counting_local;
        ] );
      ( "aggregate",
        [
          Alcotest.test_case "group by count" `Quick test_group_by_count;
          Alcotest.test_case "sum/min/max" `Quick test_group_by_sum_min_max;
          Alcotest.test_case "global" `Quick test_global_aggregate;
          Alcotest.test_case "having" `Quick test_having;
          Alcotest.test_case "errors" `Quick test_aggregate_errors;
        ] );
      ( "classify",
        [
          Alcotest.test_case "sets by rank" `Quick test_classify_sets;
          Alcotest.test_case "separators" `Quick test_classify_separators;
          Alcotest.test_case "graphs" `Quick test_classify_graphs;
        ] );
      ("properties", qcheck_cases);
    ]
