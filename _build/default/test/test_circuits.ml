(* Tests for Fmtk_circuits: boolean circuits and the FO -> AC0 compilation
   of slides 20-23. *)

module Signature = Fmtk_logic.Signature
module Parser = Fmtk_logic.Parser
module Structure = Fmtk_structure.Structure
module Gen = Fmtk_structure.Gen
module Eval = Fmtk_eval.Eval
module Circuit = Fmtk_circuits.Circuit
module Fo_circuit = Fmtk_circuits.Fo_circuit

let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg
let f = Parser.parse_exn

(* ---------- Raw circuits ---------- *)

let test_gate_evaluation () =
  let c = Circuit.create () in
  let p = Circuit.input c "p" and q = Circuit.input c "q" in
  (* (!p | q) & (p & !q)  — the slide-21 example, evaluated. *)
  let left = Circuit.or_ c [ Circuit.not_ c p; q ] in
  let right = Circuit.and_ c [ p; Circuit.not_ c q ] in
  let out = Circuit.and_ c [ left; right ] in
  let env p_v q_v name =
    match name with
    | "p" -> p_v
    | "q" -> q_v
    | _ -> raise Not_found
  in
  checkb "p=1 q=0" false (Circuit.eval c ~output:out (env true false));
  checkb "p=1 q=1" false (Circuit.eval c ~output:out (env true true));
  checkb "p=0 q=0" false (Circuit.eval c ~output:out (env false false))

let test_constant_folding () =
  let c = Circuit.create () in
  let p = Circuit.input c "p" in
  checkb "and [] = true" true
    (Circuit.eval c ~output:(Circuit.and_ c []) (fun _ -> false));
  checkb "or [] = false" false
    (Circuit.eval c ~output:(Circuit.or_ c []) (fun _ -> true));
  let t = Circuit.const c true in
  checkb "and [p; true] folds to p" true (Circuit.and_ c [ p; t ] = p);
  checkb "double negation folds" true (Circuit.not_ c (Circuit.not_ c p) = p);
  let fgate = Circuit.const c false in
  checkb "or [p; false] folds to p" true (Circuit.or_ c [ p; fgate ] = p)

let test_hash_consing () =
  let c = Circuit.create () in
  let p = Circuit.input c "p" and q = Circuit.input c "q" in
  let a1 = Circuit.and_ c [ p; q ] and a2 = Circuit.and_ c [ q; p ] in
  checkb "commutative sharing" true (a1 = a2);
  let big = Circuit.or_ c [ a1; a2 ] in
  checkb "or of shared node folds to it" true (big = a1)

let test_size_depth () =
  let c = Circuit.create () in
  let p = Circuit.input c "p" and q = Circuit.input c "q" in
  let out = Circuit.and_ c [ Circuit.or_ c [ p; q ]; Circuit.not_ c p ] in
  checki "size counts all reachable gates" 5 (Circuit.size c ~output:out);
  checki "depth" 2 (Circuit.depth c ~output:out);
  checkb "inputs" true (Circuit.inputs c ~output:out = [ "p"; "q" ])

(* ---------- FO -> circuit ---------- *)

let compiled_matches phi n trials seed =
  let compiled = Fo_circuit.compile Signature.graph ~size:n phi in
  let rng = Random.State.make [| seed |] in
  List.for_all
    (fun _ ->
      let s = Gen.random_graph ~rng n 0.4 in
      Fo_circuit.run compiled s = Eval.sat s phi)
    (List.init trials Fun.id)

let test_fo_circuit_agreement () =
  List.iter
    (fun q ->
      checkb q true (compiled_matches (f q) 5 25 11))
    [
      "exists x. E(x,x)";
      "forall x. exists y. E(x,y)";
      "exists x y. E(x,y) & !E(y,x)";
      "forall x y. E(x,y) -> E(y,x)";
      "exists x. forall y. x = y | E(x,y)";
      "forall x y z. (E(x,y) & E(y,z)) -> E(x,z)";
      "true";
      "false";
    ]

let test_fo_circuit_depth_constant_in_n () =
  (* AC0: depth must not grow with n. *)
  let phi = f "forall x. exists y. E(x,y) & !E(y,x)" in
  let depths =
    List.map
      (fun n ->
        Fo_circuit.circuit_depth (Fo_circuit.compile Signature.graph ~size:n phi))
      [ 2; 4; 8; 16 ]
  in
  match depths with
  | d :: rest -> List.iter (fun d' -> checki "depth constant" d d') rest
  | [] -> assert false

let test_fo_circuit_size_polynomial () =
  (* Size grows, but polynomially: for this qr-2 sentence at most c*n^2. *)
  let phi = f "forall x. exists y. E(x,y)" in
  List.iter
    (fun n ->
      let size =
        Fo_circuit.circuit_size (Fo_circuit.compile Signature.graph ~size:n phi)
      in
      checkb
        (Printf.sprintf "size(%d)=%d <= 3n^2+n+2" n size)
        true
        (size <= (3 * n * n) + n + 2))
    [ 2; 4; 8; 16; 32 ]

let test_fo_circuit_inputs () =
  let phi = f "exists x y. E(x,y)" in
  let compiled = Fo_circuit.compile Signature.graph ~size:3 phi in
  checki "9 ground atoms" 9 (Fo_circuit.input_count compiled)

let test_fo_circuit_validation () =
  let expect_invalid g =
    try
      ignore (Fo_circuit.compile Signature.graph ~size:3 g);
      Alcotest.fail "expected Invalid_argument"
    with Invalid_argument _ -> ()
  in
  expect_invalid (f "E(x,y)");
  expect_invalid (f "exists x. P(x)");
  let sg_c = Signature.make ~consts:[ "a" ] [ ("E", 2) ] in
  try
    ignore (Fo_circuit.compile sg_c ~size:3 (f "exists x. E(x,'a)"));
    Alcotest.fail "constants must be rejected"
  with Invalid_argument _ -> ()

let test_run_size_mismatch () =
  let compiled = Fo_circuit.compile Signature.graph ~size:4 (f "exists x. E(x,x)") in
  try
    ignore (Fo_circuit.run compiled (Gen.cycle 5));
    Alcotest.fail "expected size mismatch"
  with Invalid_argument _ -> ()

(* ---------- QCheck ---------- *)

let gen_sentence =
  QCheck2.Gen.oneofl
    (List.map f
       [
         "exists x. E(x,x)";
         "forall x. exists y. E(x,y)";
         "exists x y. E(x,y) & E(y,x)";
         "forall x y. E(x,y) -> E(y,x)";
         "exists x. forall y. E(x,y) | x = y";
       ])

let prop_circuit_equals_eval =
  QCheck2.Test.make ~count:100 ~name:"compiled circuit = naive evaluation"
    QCheck2.Gen.(triple gen_sentence (int_range 1 6) (int_range 0 10000))
    (fun (phi, n, seed) ->
      let compiled = Fo_circuit.compile Signature.graph ~size:n phi in
      let rng = Random.State.make [| seed |] in
      let s = Gen.random_graph ~rng n 0.5 in
      Fo_circuit.run compiled s = Eval.sat s phi)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_circuit_equals_eval ]

let () =
  Alcotest.run "fmtk_circuits"
    [
      ( "circuit",
        [
          Alcotest.test_case "gate evaluation" `Quick test_gate_evaluation;
          Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "hash consing" `Quick test_hash_consing;
          Alcotest.test_case "size and depth" `Quick test_size_depth;
        ] );
      ( "fo-circuit",
        [
          Alcotest.test_case "agreement with eval" `Quick test_fo_circuit_agreement;
          Alcotest.test_case "depth constant in n" `Quick test_fo_circuit_depth_constant_in_n;
          Alcotest.test_case "size polynomial in n" `Quick test_fo_circuit_size_polynomial;
          Alcotest.test_case "ground-atom inputs" `Quick test_fo_circuit_inputs;
          Alcotest.test_case "validation" `Quick test_fo_circuit_validation;
          Alcotest.test_case "size mismatch" `Quick test_run_size_mismatch;
        ] );
      ("properties", qcheck_cases);
    ]
