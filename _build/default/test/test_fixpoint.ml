(* Tests for Fmtk_fixpoint: FO(IFP) syntax, evaluation, and the canonical
   fixpoint definitions (TC, connectivity, EVEN-with-order). *)

module Fp = Fmtk_fixpoint.Fp_formula
module Fp_eval = Fmtk_fixpoint.Fp_eval
module Signature = Fmtk_logic.Signature
module Structure = Fmtk_structure.Structure
module Tuple = Fmtk_structure.Tuple
module Graph = Fmtk_structure.Graph
module Gen = Fmtk_structure.Gen
module Eval = Fmtk_eval.Eval
module Parser = Fmtk_logic.Parser

let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg
let v x = Fmtk_logic.Term.Var x

let graph_of edges ~size =
  Structure.make Signature.graph ~size
    [ ("E", List.map (fun (u, v) -> [| u; v |]) edges) ]

(* ---------- Syntax ---------- *)

let test_of_fo_agrees () =
  let fo = Parser.parse_exn "forall x. exists y. E(x,y) | E(y,x)" in
  List.iter
    (fun g ->
      checkb "FO fragment agrees" (Eval.sat g fo) (Fp_eval.sat g (Fp.of_fo fo)))
    [ Gen.cycle 4; Gen.path 4; graph_of [] ~size:2 ]

let test_free_vars () =
  Alcotest.(check (list string))
    "TC has free u, v" [ "u"; "v" ]
    (Fp.free_vars Fp.transitive_closure);
  Alcotest.(check (list string)) "connectivity closed" [] (Fp.free_vars Fp.connectivity);
  Alcotest.(check (list string)) "even closed" [] (Fp.free_vars Fp.even_on_orders)

let test_positivity () =
  (* positivity is a property of the operator's body (the operator itself
     rebinds its relation variable). *)
  let tc_body =
    Fp.Or
      ( Fp.Rel ("E", [ v "x"; v "y" ]),
        Fp.Exists
          ( "z",
            Fp.And (Fp.Rel ("T", [ v "x"; v "z" ]), Fp.Rel ("E", [ v "z"; v "y" ]))
          ) )
  in
  checkb "TC body positive in T" true (Fp.positive_in "T" tc_body);
  checkb "negated occurrence detected" false
    (Fp.positive_in "T" (Fp.Not (Fp.Rel ("T", [ v "x" ]))));
  checkb "rebinding masks inner occurrences" true
    (Fp.positive_in "T"
       (Fp.Ifp ("T", [ "x" ], Fp.Not (Fp.Rel ("T", [ v "x" ])), [ v "u" ])));
  checkb "left of implies is negative" false
    (Fp.positive_in "T" (Fp.Implies (Fp.Rel ("T", [ v "x" ]), Fp.True)));
  checki "ifp depth" 1 (Fp.ifp_depth Fp.transitive_closure)

(* ---------- TC via IFP ---------- *)

let test_tc () =
  let graphs =
    [
      Gen.successor 6;
      Gen.cycle 4;
      graph_of [ (0, 1); (1, 2); (2, 0); (3, 3) ] ~size:5;
      graph_of [] ~size:3;
    ]
  in
  List.iter
    (fun g ->
      let via_ifp =
        Fp_eval.answers g Fp.transitive_closure ~vars:[ "u"; "v" ]
      in
      checkb "IFP TC = matrix TC" true
        (Tuple.Set.equal via_ifp (Graph.transitive_closure g)))
    graphs

let test_tc_stages () =
  (* On an n-chain the fixpoint needs ~n stages; the stats expose the
     inherently-iterative nature FO lacks. *)
  let stats = Fp_eval.new_stats () in
  ignore
    (Fp_eval.holds ~stats (Gen.successor 8) Fp.transitive_closure
       ~env:[ ("u", 0); ("v", 7) ]);
  checkb "at least 7 stages" true (stats.Fp_eval.stages >= 7)

(* ---------- Connectivity ---------- *)

let test_connectivity () =
  List.iter
    (fun g ->
      checkb "IFP connectivity = BFS" (Graph.connected g)
        (Fp_eval.sat g Fp.connectivity))
    [
      Gen.cycle 5;
      Gen.path 5;
      Gen.union_of [ Gen.cycle 3; Gen.cycle 3 ];
      Gen.binary_tree 2;
      graph_of [] ~size:1;
    ]

(* ---------- EVEN over orders (Immerman–Vardi flavour) ---------- *)

let test_even_on_orders () =
  for n = 1 to 9 do
    checkb
      (Printf.sprintf "IFP even on L%d" n)
      (n mod 2 = 0)
      (Fp_eval.sat (Gen.linear_order n) Fp.even_on_orders)
  done

(* ---------- Nested/parameterized fixpoints ---------- *)

let test_parameterized_fixpoint () =
  (* Reachability from a fixed source held in an outer variable:
     phi(s, t) = [IFP R(y). y = s | ∃z (R(z) ∧ E(z,y))](t). *)
  let body =
    Fp.Or
      ( Fp.Eq (v "y", v "s"),
        Fp.Exists
          ("z", Fp.And (Fp.Rel ("R", [ v "z" ]), Fp.Rel ("E", [ v "z"; v "y" ]))) )
  in
  let reach = Fp.Ifp ("R", [ "y" ], body, [ v "t" ]) in
  let g = graph_of [ (0, 1); (1, 2); (3, 0) ] ~size:4 in
  let holds s t = Fp_eval.holds g reach ~env:[ ("s", s); ("t", t) ] in
  checkb "0 reaches 2" true (holds 0 2);
  checkb "0 does not reach 3" false (holds 0 3);
  checkb "3 reaches 2" true (holds 3 2);
  checkb "source reaches itself" true (holds 2 2)

let test_errors () =
  (try
     ignore (Fp_eval.sat (Gen.set 2) Fp.transitive_closure);
     Alcotest.fail "free variables must be rejected"
   with Invalid_argument _ -> ());
  try
    ignore
      (Fp_eval.sat (Gen.set 2)
         (Fp.Exists
            ("w", Fp.Ifp ("T", [ "x" ], Fp.Rel ("Q", [ v "x" ]), [ v "w" ]))));
    Alcotest.fail "unknown relation must be rejected"
  with Invalid_argument _ -> ()

(* ---------- QCheck ---------- *)

let gen_graph =
  let open QCheck2.Gen in
  let* n = int_range 1 6 in
  let* edges =
    list_size (int_range 0 (n * 2))
      (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
  in
  return (graph_of edges ~size:n)

let prop_tc =
  QCheck2.Test.make ~count:100 ~name:"IFP TC = matrix TC on random graphs"
    gen_graph (fun g ->
      Tuple.Set.equal
        (Fp_eval.answers g Fp.transitive_closure ~vars:[ "u"; "v" ])
        (Graph.transitive_closure g))

let prop_conn =
  QCheck2.Test.make ~count:100 ~name:"IFP connectivity on random graphs"
    gen_graph (fun g -> Fp_eval.sat g Fp.connectivity = Graph.connected g)

let prop_datalog_agrees =
  QCheck2.Test.make ~count:60 ~name:"IFP TC = Datalog TC" gen_graph (fun g ->
      Tuple.Set.equal
        (Fp_eval.answers g Fp.transitive_closure ~vars:[ "u"; "v" ])
        (Fmtk_datalog.Programs.tc_of g))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_tc; prop_conn; prop_datalog_agrees ]

let () =
  Alcotest.run "fmtk_fixpoint"
    [
      ( "syntax",
        [
          Alcotest.test_case "of_fo" `Quick test_of_fo_agrees;
          Alcotest.test_case "free vars" `Quick test_free_vars;
          Alcotest.test_case "positivity" `Quick test_positivity;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "transitive closure" `Quick test_tc;
          Alcotest.test_case "stage counting" `Quick test_tc_stages;
          Alcotest.test_case "connectivity" `Quick test_connectivity;
          Alcotest.test_case "EVEN over orders" `Quick test_even_on_orders;
          Alcotest.test_case "parameterized fixpoint" `Quick test_parameterized_fixpoint;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
      ("properties", qcheck_cases);
    ]
