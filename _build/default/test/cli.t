CLI smoke tests — each subcommand exercised once with deterministic output.

FO evaluation (direct and through the RA compiler):

  $ ../bin/fmtk_cli.exe eval cycle:6 "forall x. exists y. E(x,y)"
  true
  $ ../bin/fmtk_cli.exe eval order:4 "exists x y. x < y" --ra
  true

Ehrenfeucht-Fraisse games, with distinguishing-sentence extraction:

  $ ../bin/fmtk_cli.exe game order:4 order:5 --rounds 2
  duplicator wins the 2-round game
  $ ../bin/fmtk_cli.exe game order:2 order:3 --rounds 2 --distinguish
  duplicator loses the 2-round game
  distinguishing sentence (qr ≤ 2): forall x1. (forall x2. x1 = x2 | !lt(x2, x1)) | (forall x2. lt(x2, x1) | x1 = x2)

The reduction trick of section 3.3 (order of size 5 -> connected graph):

  $ ../bin/fmtk_cli.exe reduce --trick conn -n 5
  domain: 0..4
  E = {(0,2), (1,3), (2,4), (3,0), (4,1)}
  
  components: 1 (order size 5 is odd)

Neighborhood census and Hanf equivalence (slide-60 example):

  $ ../bin/fmtk_cli.exe census chain:5 --radius 1
  radius-1 neighborhood census (3 types):
    type 0: 1 element(s), ball size 2
    type 1: 3 element(s), ball size 3
    type 2: 1 element(s), ball size 2
  $ ../bin/fmtk_cli.exe hanf cycle:14 ../data/two_cycles.fmtk --radius 2
  G ⇆2 G': true

AC0 circuits:

  $ ../bin/fmtk_cli.exe circuit "exists x. E(x,x)" -n 4
  domain size 4: circuit size 5, depth 1, 4 inputs

Datalog and fixpoint logic on a 4-chain:

  $ ../bin/fmtk_cli.exe datalog chain:4 --program tc
  tc: 6 tuples (4 iterations, 27 join steps)
  (0,1)
  (0,2)
  (0,3)
  (1,2)
  (1,3)
  (2,3)
  $ ../bin/fmtk_cli.exe ifp chain:4 --query tc
  tc: 6 pairs
  (0,1)
  (0,2)
  (0,3)
  (1,2)
  (1,3)
  (2,3)
  (4 fixpoint stages, 64 tuples tested)

QBF and the PSPACE reduction:

  $ ../bin/fmtk_cli.exe qbf -n 2
  pigeonhole(2): 6 quantifiers, QBF solver: true, via FO model checking: true

MSO connectivity and MSO-EVEN over orders:

  $ ../bin/fmtk_cli.exe mso cycle:6 --query conn
  true
  $ ../bin/fmtk_cli.exe mso order:6 --query even
  true
