test/test_fixpoint.mli:
