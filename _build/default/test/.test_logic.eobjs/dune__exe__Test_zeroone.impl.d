test/test_zeroone.ml: Alcotest Array Float Fmtk_eval Fmtk_logic Fmtk_structure Fmtk_zeroone Lazy List QCheck2 QCheck_alcotest Random
