test/test_qbf.ml: Alcotest Fmtk_logic Fmtk_qbf Fmtk_structure Format List QCheck2 QCheck_alcotest
