test/test_fixpoint.ml: Alcotest Fmtk_datalog Fmtk_eval Fmtk_fixpoint Fmtk_logic Fmtk_structure List Printf QCheck2 QCheck_alcotest
