test/test_trees.ml: Alcotest Fmtk_logic Fmtk_structure Fmtk_trees Format List QCheck2 QCheck_alcotest Random
