test/test_counting.ml: Alcotest Array Fmtk Fmtk_counting Fmtk_db Fmtk_eval Fmtk_locality Fmtk_logic Fmtk_structure List Printf QCheck2 QCheck_alcotest
