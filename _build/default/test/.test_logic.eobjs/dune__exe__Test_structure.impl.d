test/test_structure.ml: Alcotest Array Fmtk_logic Fmtk_structure Fun List QCheck2 QCheck_alcotest Random
