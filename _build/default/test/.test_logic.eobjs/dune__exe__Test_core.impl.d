test/test_core.ml: Alcotest Fmtk Fmtk_datalog Fmtk_games Fmtk_logic Fmtk_structure List Printf Random
