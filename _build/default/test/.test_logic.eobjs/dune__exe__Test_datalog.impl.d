test/test_datalog.ml: Alcotest Array Fmtk_datalog Fmtk_logic Fmtk_structure Fun List Printf QCheck2 QCheck_alcotest
