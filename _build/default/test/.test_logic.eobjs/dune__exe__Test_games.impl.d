test/test_games.ml: Alcotest Array Fmtk_eval Fmtk_games Fmtk_logic Fmtk_structure List Printf QCheck2 QCheck_alcotest
