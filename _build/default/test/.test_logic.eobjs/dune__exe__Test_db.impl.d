test/test_db.ml: Alcotest Fmtk_db Fmtk_eval Fmtk_logic Fmtk_structure List QCheck2 QCheck_alcotest
