test/test_locality.ml: Alcotest Array Fmtk_datalog Fmtk_eval Fmtk_locality Fmtk_logic Fmtk_structure List Printf Random
