test/test_so.mli:
