test/test_circuits.ml: Alcotest Fmtk_circuits Fmtk_eval Fmtk_logic Fmtk_structure Fun List Printf QCheck2 QCheck_alcotest Random
