test/test_logic.ml: Alcotest Array Fmtk_eval Fmtk_logic Fmtk_structure List Printf QCheck2 QCheck_alcotest String
