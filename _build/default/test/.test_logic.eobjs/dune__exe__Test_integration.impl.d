test/test_integration.ml: Alcotest Fmtk Fmtk_circuits Fmtk_datalog Fmtk_db Fmtk_eval Fmtk_games Fmtk_locality Fmtk_logic Fmtk_structure List Printf QCheck2 QCheck_alcotest
