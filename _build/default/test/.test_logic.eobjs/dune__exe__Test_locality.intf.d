test/test_locality.mli:
