test/test_zeroone.mli:
