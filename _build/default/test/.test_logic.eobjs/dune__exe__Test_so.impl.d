test/test_so.ml: Alcotest Fmtk_eval Fmtk_logic Fmtk_so Fmtk_structure List Printf QCheck2 QCheck_alcotest
