(* Tests for Fmtk_so: second-order syntax, evaluation, and the MSO/∃SO
   query zoo (the "what lies beyond FO" part of the survey). *)

module So_formula = Fmtk_so.So_formula
module So_eval = Fmtk_so.So_eval
module So_queries = Fmtk_so.So_queries
module Signature = Fmtk_logic.Signature
module Structure = Fmtk_structure.Structure
module Graph = Fmtk_structure.Graph
module Gen = Fmtk_structure.Gen
module Eval = Fmtk_eval.Eval
module Parser = Fmtk_logic.Parser
open So_formula

let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg

let graph_of edges ~size =
  Structure.make Signature.graph ~size
    [ ("E", List.map (fun (u, v) -> [| u; v |]) edges) ]

let v' x = Fmtk_logic.Term.Var x

(* ---------- Embedding and measures ---------- *)

let test_of_fo () =
  let fo = Parser.parse_exn "forall x. exists y. E(x,y) -> x != y" in
  let so = of_fo fo in
  checki "fo rank preserved" 2 (fo_rank so);
  checki "no so quantifiers" 0 (so_quantifier_count so);
  (* FO fragment agrees with the FO evaluator. *)
  List.iter
    (fun g -> checkb "agrees with Eval" (Eval.sat g fo) (So_eval.sat g so))
    [ Gen.cycle 4; Gen.path 3; graph_of [ (0, 0) ] ~size:2 ]

let test_measures () =
  let phi = Exists_set ("X", Forall ("x", Mem (v' "x", "X"))) in
  checki "one so quantifier" 1 (so_quantifier_count phi);
  checki "fo rank 1" 1 (fo_rank phi);
  checkb "existential" true (is_existential_so phi);
  checkb "universal not existential" false
    (is_existential_so (Forall_set ("X", True)));
  checkb "inner so quantifier not existential-so" false
    (is_existential_so (Exists ("x", Exists_set ("X", True))))

(* ---------- Set quantification semantics ---------- *)

let test_set_semantics () =
  let s = Gen.set 3 in
  (* There is a set containing everything. *)
  checkb "full set exists" true
    (So_eval.sat s (Exists_set ("X", Forall ("x", Mem (v' "x", "X")))));
  (* There is a nonempty, non-full set (needs >= 2 elements). *)
  let proper =
    Exists_set
      ( "X",
        And
          ( Exists ("x", Mem (v' "x", "X")),
            Exists ("x", Not (Mem (v' "x", "X"))) ) )
  in
  checkb "proper subset on 3" true (So_eval.sat s proper);
  checkb "no proper subset on 1" false (So_eval.sat (Gen.set 1) proper);
  (* Forall-set duality. *)
  checkb "forall X: X nonempty is false" false
    (So_eval.sat s (Forall_set ("X", Exists ("x", Mem (v' "x", "X")))))

let test_guards () =
  (try
     ignore (So_eval.sat (Gen.set 30) (Exists_set ("X", True)));
     Alcotest.fail "domain too large must be rejected"
   with Invalid_argument _ -> ());
  (try
     ignore (So_eval.sat (Gen.set 6) (Exists_rel ("R", 3, True)));
     Alcotest.fail "relation space too large must be rejected"
   with Invalid_argument _ -> ());
  try
    ignore (So_eval.sat (Gen.set 2) (Mem (v' "x", "X")));
    Alcotest.fail "free variables must be rejected"
  with Invalid_argument _ -> ()

(* ---------- EVEN over orders, in MSO ---------- *)

let test_even_on_orders () =
  for n = 0 to 9 do
    checkb
      (Printf.sprintf "MSO even on L%d" n)
      (n mod 2 = 0)
      (So_eval.sat (Gen.linear_order n) So_queries.even_on_orders)
  done

(* ---------- Connectivity in MSO ---------- *)

let test_connectivity_mso () =
  let cases =
    [
      Gen.cycle 5;
      Gen.path 5;
      Gen.union_of [ Gen.cycle 3; Gen.cycle 3 ];
      Gen.binary_tree 2;
      graph_of [] ~size:3;
      graph_of [] ~size:1;
    ]
  in
  List.iter
    (fun g ->
      checkb "MSO connectivity = BFS connectivity" (Graph.connected g)
        (So_eval.sat g So_queries.connectivity))
    cases

(* ---------- 3-colorability ---------- *)

let sym g = Graph.symmetric_closure g

let test_three_colorable () =
  (* K3 yes, K4 no, C5 yes, C5-with-loop unaffected (loops ignored). *)
  checkb "K3" true (So_eval.sat (sym (Gen.complete 3)) So_queries.three_colorable);
  checkb "K4" false (So_eval.sat (sym (Gen.complete 4)) So_queries.three_colorable);
  checkb "C5" true (So_eval.sat (sym (Gen.cycle 5)) So_queries.three_colorable);
  checkb "direct agrees K4" false (So_queries.three_colorable_direct (sym (Gen.complete 4)))

(* ---------- Hamiltonian path (full SO) ---------- *)

let test_hamiltonian () =
  checkb "directed path has one" true
    (So_eval.sat (Gen.path 4) So_queries.hamiltonian_path);
  checkb "two components: no" false
    (So_eval.sat (Gen.union_of [ Gen.path 2; Gen.path 2 ]) So_queries.hamiltonian_path);
  checkb "cycle 4 has one" true
    (So_eval.sat (Gen.cycle 4) So_queries.hamiltonian_path);
  (* Star with all edges out of the centre: no Hamiltonian path on >= 4. *)
  let star = graph_of [ (0, 1); (0, 2); (0, 3) ] ~size:4 in
  checkb "out-star: no" false (So_eval.sat star So_queries.hamiltonian_path)

(* ---------- QCheck cross-validation ---------- *)

let gen_graph max_n =
  let open QCheck2.Gen in
  let* n = int_range 1 max_n in
  let* edges =
    list_size (int_range 0 (n * 2))
      (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
  in
  return (graph_of edges ~size:n)

let prop_connectivity =
  QCheck2.Test.make ~count:100 ~name:"MSO connectivity on random graphs"
    (gen_graph 6) (fun g ->
      So_eval.sat g So_queries.connectivity = Graph.connected g)

let prop_three_col =
  QCheck2.Test.make ~count:60 ~name:"MSO 3COL = brute force" (gen_graph 5)
    (fun g ->
      So_eval.sat g So_queries.three_colorable
      = So_queries.three_colorable_direct g)

let prop_hamiltonian =
  QCheck2.Test.make ~count:40 ~name:"∃SO Hamiltonian path = backtracking"
    (gen_graph 4) (fun g ->
      So_eval.sat g So_queries.hamiltonian_path
      = So_queries.hamiltonian_path_direct g)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_connectivity; prop_three_col; prop_hamiltonian ]

let () =
  Alcotest.run "fmtk_so"
    [
      ( "syntax",
        [
          Alcotest.test_case "of_fo" `Quick test_of_fo;
          Alcotest.test_case "measures" `Quick test_measures;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "set quantifiers" `Quick test_set_semantics;
          Alcotest.test_case "guards" `Quick test_guards;
        ] );
      ( "queries",
        [
          Alcotest.test_case "EVEN over orders" `Quick test_even_on_orders;
          Alcotest.test_case "connectivity" `Quick test_connectivity_mso;
          Alcotest.test_case "3-colorability" `Quick test_three_colorable;
          Alcotest.test_case "Hamiltonian path" `Slow test_hamiltonian;
        ] );
      ("properties", qcheck_cases);
    ]
