(* Tests for Fmtk_eval: the naive model checker (combined complexity
   O(n^k), slide 19) and answer-set computation. *)

module Formula = Fmtk_logic.Formula
module Parser = Fmtk_logic.Parser
module Structure = Fmtk_structure.Structure
module Signature = Fmtk_logic.Signature
module Tuple = Fmtk_structure.Tuple
module Gen = Fmtk_structure.Gen
module Eval = Fmtk_eval.Eval
open Formula

let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg
let f = Parser.parse_exn

let graph_of edges ~size =
  Structure.make Signature.graph ~size
    [ ("E", List.map (fun (u, v) -> [| u; v |]) edges) ]

(* ---------- Basic semantics ---------- *)

let test_atoms () =
  let s = graph_of [ (0, 1) ] ~size:2 in
  checkb "true" true (Eval.sat s True);
  checkb "false" false (Eval.sat s False);
  checkb "edge" true (Eval.holds s (f "E(x,y)") ~env:(Eval.bind "x" 0 (Eval.bind "y" 1 Eval.empty_env)));
  checkb "non-edge" false (Eval.holds s (f "E(x,y)") ~env:(Eval.bind "x" 1 (Eval.bind "y" 0 Eval.empty_env)));
  checkb "eq" true (Eval.holds s (f "x = x") ~env:(Eval.bind "x" 0 Eval.empty_env))

let test_connectives () =
  let s = graph_of [ (0, 1) ] ~size:2 in
  let env = Eval.bind "x" 0 (Eval.bind "y" 1 Eval.empty_env) in
  checkb "and" true (Eval.holds s (f "E(x,y) & x != y") ~env);
  checkb "or" true (Eval.holds s (f "E(y,x) | E(x,y)") ~env);
  checkb "implies vacuous" true (Eval.holds s (f "E(y,x) -> false") ~env);
  checkb "implies fails" false (Eval.holds s (f "E(x,y) -> E(y,x)") ~env);
  checkb "iff" true (Eval.holds s (f "E(y,x) <-> false") ~env);
  checkb "not" true (Eval.holds s (f "!E(y,x)") ~env)

let test_quantifiers () =
  let s = graph_of [ (0, 1); (1, 2) ] ~size:3 in
  checkb "exists edge" true (Eval.sat s (f "exists x y. E(x,y)"));
  checkb "everyone has successor" false (Eval.sat s (f "forall x. exists y. E(x,y)"));
  checkb "source exists" true (Eval.sat s (f "exists x. forall y. !E(y,x)"));
  checkb "sink exists" true (Eval.sat s (f "exists x. forall y. !E(x,y)"))

let test_constants () =
  let sg = Signature.make ~consts:[ "a"; "b" ] [ ("E", 2) ] in
  let s =
    Structure.make sg ~size:3 ~consts:[ ("a", 0); ("b", 2) ]
      [ ("E", [ [| 0; 1 |]; [| 1; 2 |] ]) ]
  in
  checkb "E(a,x) for some x" true (Eval.sat s (f "exists x. E('a,x)"));
  checkb "E(a,b) fails" false (Eval.sat s (f "E('a,'b)"));
  checkb "a != b" true (Eval.sat s (f "'a != 'b"))

let test_error_cases () =
  let s = graph_of [] ~size:2 in
  let expect_invalid g =
    try
      ignore (Eval.sat s g);
      Alcotest.fail "expected Invalid_argument"
    with Invalid_argument _ -> ()
  in
  expect_invalid (f "R(x,y)" |> fun g -> exists_many [ "x"; "y" ] g);
  expect_invalid (f "exists x. x = 'c");
  expect_invalid (f "E(x,y)") (* free variables in sat *)

(* ---------- Counting sentences on sets ---------- *)

let test_cardinality_queries () =
  for n = 1 to 6 do
    let s = Gen.set n in
    for k = 1 to 7 do
      checkb
        (Printf.sprintf "at_least %d on %d" k n)
        (n >= k)
        (Eval.sat s (at_least k))
    done
  done

(* ---------- Answers ---------- *)

let test_answers () =
  let s = graph_of [ (0, 1); (1, 2); (0, 2) ] ~size:3 in
  let vars, ans = Eval.answers s (f "E(x,y)") in
  Alcotest.(check (list string)) "vars" [ "x"; "y" ] vars;
  checki "3 edges" 3 (Tuple.Set.cardinal ans);
  (* Composition: paths of length 2 *)
  let _, paths = Eval.answers s (f "exists z. E(x,z) & E(z,y)") in
  checkb "path 0->2 via 1" true (Tuple.Set.mem [| 0; 2 |] paths);
  checki "exactly one" 1 (Tuple.Set.cardinal paths);
  (* Sentence: empty tuple iff true *)
  let _, yes = Eval.answers s (f "exists x y. E(x,y)") in
  checkb "boolean true = {()}" true (Tuple.Set.mem [||] yes);
  let _, no = Eval.answers s (f "forall x y. E(x,y)") in
  checki "boolean false = {}" 0 (Tuple.Set.cardinal no)

let test_definable_relation_order () =
  let s = graph_of [ (0, 1) ] ~size:2 in
  let r1 = Eval.definable_relation s (f "E(x,y)") ~vars:[ "x"; "y" ] in
  let r2 = Eval.definable_relation s (f "E(x,y)") ~vars:[ "y"; "x" ] in
  checkb "(0,1) in x,y order" true (Tuple.Set.mem [| 0; 1 |] r1);
  checkb "(1,0) in y,x order" true (Tuple.Set.mem [| 1; 0 |] r2);
  (* Extra variables range over the whole domain. *)
  let r3 = Eval.definable_relation s (f "E(x,y)") ~vars:[ "x"; "y"; "z" ] in
  checki "cartesian with z" 2 (Tuple.Set.cardinal r3)

(* ---------- Instrumentation: the O(n^k) shape (experiment E1) ---------- *)

let nested_quantifier_formula k =
  (* exists x1 ... exists xk . x1 = x1 & ... — forces full scans. *)
  let xs = List.init k (fun i -> Printf.sprintf "x%d" i) in
  forall_many xs (conj (List.map (fun x -> Eq (v x, v x)) xs))

let test_work_counter_nk () =
  (* quantifier_steps for forall-chains of depth k over domain n is
     n + n^2 + ... + n^k. *)
  let expect n k =
    let rec sum i acc = if i > k then acc else sum (i + 1) (acc + (int_of_float (float_of_int n ** float_of_int i))) in
    sum 1 0
  in
  List.iter
    (fun (n, k) ->
      let s = Gen.set n in
      let stats = Eval.new_stats () in
      ignore (Eval.sat ~stats s (nested_quantifier_formula k));
      checki
        (Printf.sprintf "work(n=%d,k=%d)" n k)
        (expect n k) stats.Eval.quantifier_steps)
    [ (2, 1); (2, 2); (3, 2); (3, 3); (4, 3) ]

let test_atom_counter () =
  let s = Gen.set 3 in
  let stats = Eval.new_stats () in
  ignore (Eval.sat ~stats s (f "forall x. x = x"));
  checki "3 atom checks" 3 stats.Eval.atom_checks

(* ---------- Spectrum / bounded model search (Trakhtenbrot context) ---- *)

module Spectrum = Fmtk_eval.Spectrum

let test_spectrum_cardinality () =
  (* Spectrum of "exactly 3 elements" over the empty signature: {3}. *)
  Alcotest.(check (list int))
    "exactly 3" [ 3 ]
    (Spectrum.spectrum ~signature:Signature.empty ~up_to:5 (exactly 3));
  Alcotest.(check (list int))
    "at least 2" [ 2; 3; 4; 5 ]
    (Spectrum.spectrum ~signature:Signature.empty ~up_to:5 (at_least 2))

let test_spectrum_graphs () =
  (* "E is a nonempty symmetric loop-free relation" needs >= 2 elements. *)
  let phi =
    f "(exists x y. E(x,y)) & (forall x y. E(x,y) -> E(y,x)) & (forall x. !E(x,x))"
  in
  Alcotest.(check (list int))
    "spectrum" [ 2; 3 ]
    (Spectrum.spectrum ~signature:Signature.graph ~up_to:3 phi);
  (* Minimal model found is a symmetric pair. *)
  (match Spectrum.find_model ~signature:Signature.graph ~up_to:3 phi with
  | Some m ->
      checki "minimal size" 2 (Structure.size m);
      checkb "symmetric edge" true
        (Structure.mem m "E" [| 0; 1 |] = Structure.mem m "E" [| 1; 0 |])
  | None -> Alcotest.fail "expected a model");
  (* Unsatisfiable sentence: empty spectrum. *)
  Alcotest.(check (list int))
    "unsat" []
    (Spectrum.spectrum ~signature:Signature.graph ~up_to:3
       (f "(exists x. E(x,x)) & (forall x. !E(x,x))"))

let test_spectrum_counts_models () =
  (* At size 2 over {E/2} there are 2^4 structures; exactly half satisfy
     E(0,0)... we count models of "some loop": 16 - #loop-free = 16 - 4 = 12. *)
  let loops = f "exists x. E(x,x)" in
  checki "12 of 16 structures have a loop" 12
    (Seq.length (Spectrum.models ~signature:Signature.graph ~size:2 loops))

let test_spectrum_validation () =
  (try
     ignore (Spectrum.satisfiable_at ~signature:Signature.graph ~size:2 (f "E(x,y)"));
     Alcotest.fail "free variables must be rejected"
   with Invalid_argument _ -> ());
  let sg = Signature.make ~consts:[ "c" ] [ ("E", 2) ] in
  try
    ignore (Spectrum.satisfiable_at ~signature:sg ~size:2 (f "exists x. E(x,x)"));
    Alcotest.fail "constants must be rejected"
  with Invalid_argument _ -> ()

(* ---------- Cross-check: evaluator agrees with semantic queries ------- *)

let prop_gen_graph =
  let open QCheck2.Gen in
  let* n = int_range 1 6 in
  let* edges =
    list_size (int_range 0 (n * 2))
      (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
  in
  return (graph_of edges ~size:n)

let prop_no_isolated =
  QCheck2.Test.make ~count:200
    ~name:"FO 'isolated vertex exists' matches degree check" prop_gen_graph
    (fun g ->
      let fo =
        Eval.sat g (f "exists x. forall y. !E(x,y) & !E(y,x)")
      in
      let adj = Fmtk_structure.Graph.undirected_adjacency g in
      let semantic =
        List.exists
          (fun e ->
            List.for_all (fun n -> n = e) adj.(e)
            && not (Structure.mem g "E" [| e; e |]))
          (Structure.domain g)
      in
      fo = semantic)

let prop_has_edge =
  QCheck2.Test.make ~count:200 ~name:"FO 'has edge' matches tuple count"
    prop_gen_graph (fun g ->
      Eval.sat g (f "exists x y. E(x,y)")
      = (Tuple.Set.cardinal (Structure.rel g "E") > 0))

let prop_symmetric =
  QCheck2.Test.make ~count:200 ~name:"FO symmetry matches closure check"
    prop_gen_graph (fun g ->
      Eval.sat g (f "forall x y. E(x,y) -> E(y,x)")
      = Structure.equal g (Fmtk_structure.Graph.symmetric_closure g))

let prop_reflexive =
  QCheck2.Test.make ~count:200 ~name:"FO reflexivity" prop_gen_graph (fun g ->
      Eval.sat g (f "forall x. E(x,x)")
      = List.for_all
          (fun e -> Structure.mem g "E" [| e; e |])
          (Structure.domain g))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_no_isolated; prop_has_edge; prop_symmetric; prop_reflexive ]

let () =
  Alcotest.run "fmtk_eval"
    [
      ( "semantics",
        [
          Alcotest.test_case "atoms" `Quick test_atoms;
          Alcotest.test_case "connectives" `Quick test_connectives;
          Alcotest.test_case "quantifiers" `Quick test_quantifiers;
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "errors" `Quick test_error_cases;
          Alcotest.test_case "cardinality" `Quick test_cardinality_queries;
        ] );
      ( "answers",
        [
          Alcotest.test_case "answer sets" `Quick test_answers;
          Alcotest.test_case "variable order" `Quick test_definable_relation_order;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "n^k work counter" `Quick test_work_counter_nk;
          Alcotest.test_case "atom counter" `Quick test_atom_counter;
        ] );
      ( "spectrum",
        [
          Alcotest.test_case "cardinality sentences" `Quick test_spectrum_cardinality;
          Alcotest.test_case "graph sentences" `Quick test_spectrum_graphs;
          Alcotest.test_case "model counting" `Quick test_spectrum_counts_models;
          Alcotest.test_case "validation" `Quick test_spectrum_validation;
        ] );
      ("properties", qcheck_cases);
    ]
