(* Tests for Fmtk_zeroone: Monte-Carlo μ_n, extension axioms / k-e.c.,
   Paley witnesses, and the almost-sure-theory decision procedure. *)

module Signature = Fmtk_logic.Signature
module Parser = Fmtk_logic.Parser
module Formula = Fmtk_logic.Formula
module Structure = Fmtk_structure.Structure
module Gen = Fmtk_structure.Gen
module Eval = Fmtk_eval.Eval
module Estimator = Fmtk_zeroone.Estimator
module Extension = Fmtk_zeroone.Extension
module Paley = Fmtk_zeroone.Paley
module Almost_sure = Fmtk_zeroone.Almost_sure

let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg
let rng () = Random.State.make [| 2024 |]
let f = Parser.parse_exn

(* ---------- Estimator ---------- *)

let test_mu_complete_graph () =
  (* Q1 = forall x y. E(x,y): only complete-with-loops graphs — probability
     2^-(n^2) exactly; at n = 2 that's 1/16. *)
  let q1 = f "forall x y. E(x,y)" in
  let m = Estimator.mu_formula ~rng:(rng ()) ~trials:4000 Signature.graph 2 q1 in
  checkb "mu_2(Q1) ~ 1/16" true (m > 0.02 && m < 0.12);
  let m8 = Estimator.mu_formula ~rng:(rng ()) ~trials:300 Signature.graph 8 q1 in
  checkb "mu_8(Q1) ~ 0" true (m8 < 0.01)

let test_mu_q2_tends_to_one () =
  (* Q2 = forall x forall y exists z. E(z,x) & !E(z,y) — a.s. true
     (slide 63). For x = y it is falsifiable only... note E(z,x) & !E(z,x)
     is unsatisfiable, so Q2 as literally stated fails whenever x = y is
     forced; the paper's reading quantifies distinct x, y. *)
  let q2 = f "forall x y. x = y | (exists z. E(z,x) & !E(z,y))" in
  (* Convergence is slow: the failure probability is ~ n^2 (3/4)^n, still
     ~0.98 at n = 12 and only negligible near n = 40. *)
  let m12 = Estimator.mu_formula ~rng:(rng ()) ~trials:100 Signature.graph 12 q2 in
  let m40 = Estimator.mu_formula ~rng:(rng ()) ~trials:100 Signature.graph 40 q2 in
  checkb "mu grows" true (m40 >= m12);
  checkb "mu_40(Q2) near 1" true (m40 > 0.85)

let test_mu_even_alternates () =
  let even s = Structure.size s mod 2 = 0 in
  let series =
    Estimator.mu_series ~rng:(rng ()) ~trials:10 Signature.graph
      [ 2; 3; 4; 5 ] even
  in
  checkb "alternates 1,0,1,0" true
    (List.map snd series = [ 1.0; 0.0; 1.0; 0.0 ])

let test_mu_errors () =
  try
    ignore (Estimator.mu ~rng:(rng ()) ~trials:0 Signature.graph 3 (fun _ -> true));
    Alcotest.fail "expected invalid trials"
  with Invalid_argument _ -> ()

(* ---------- k-e.c. ---------- *)

let test_kec_small () =
  (* The 5-cycle (= Paley graph of order 5) is 1-e.c. but not 2-e.c. *)
  let c5 = Paley.graph 5 in
  checkb "C5 is 1-e.c." true (Extension.is_kec ~k:1 c5);
  checkb "C5 is not 2-e.c." false (Extension.is_kec ~k:2 c5);
  (* An empty graph is not even 1-e.c. (no adjacent witness). *)
  checkb "empty graph fails" false
    (Extension.is_kec ~k:1 (Structure.make Signature.graph ~size:4 []));
  (* A complete graph fails 1-e.c. (no non-adjacent witness). *)
  checkb "complete graph fails" false
    (Extension.is_kec ~k:1 (Fmtk_structure.Graph.symmetric_closure (Gen.complete 5)))

let test_kec_failure_witness () =
  let c5 = Paley.graph 5 in
  match Extension.kec_failure ~k:2 c5 with
  | None -> Alcotest.fail "expected a 2-e.c. failure on C5"
  | Some (xs, ys) ->
      checkb "witness size <= 2" true (List.length xs + List.length ys <= 2)

let test_kec_matches_axiom () =
  (* is_kec agrees with evaluating the FO extension axioms. *)
  let graphs =
    [
      Paley.graph 5;
      Paley.graph 13;
      Gen.random_undirected_graph ~rng:(rng ()) 12 0.5;
    ]
  in
  List.iter
    (fun g ->
      let by_verifier = Extension.is_kec ~k:2 g in
      let by_axioms =
        List.for_all
          (fun (xs, ys) -> Eval.sat g (Extension.extension_axiom ~xs ~ys))
          [ (0, 1); (1, 0); (2, 0); (1, 1); (0, 2) ]
      in
      checkb "verifier = axioms" by_verifier by_axioms)
    graphs

let test_sigma_extension () =
  (* Uniform random structures over {E/2} of moderate size satisfy the
     1-extension property (needs all 8 atom-types on z over a single
     element, incl. loops); tiny structures cannot. *)
  let sg = Signature.graph in
  let big = Gen.random_structure ~rng:(rng ()) sg 64 in
  let tiny = Gen.random_structure ~rng:(rng ()) sg 3 in
  checkb "random 64 has 1-extension" true (Extension.sigma_extension_holds ~k:1 big);
  checkb "random 3 lacks it" false (Extension.sigma_extension_holds ~k:1 tiny)

(* ---------- Paley ---------- *)

let test_paley_structure () =
  let g = Paley.graph 13 in
  checki "order" 13 (Structure.size g);
  (* (q-1)/2-regular and symmetric. *)
  let degs = Fmtk_structure.Graph.degree_set g in
  checkb "6-regular" true (degs = [ 6 ]);
  checkb "symmetric" true
    (Fmtk_structure.Tuple.Set.for_all
       (fun t -> Structure.mem g "E" [| t.(1); t.(0) |])
       (Structure.rel g "E"));
  try
    ignore (Paley.graph 7);
    Alcotest.fail "7 mod 4 = 3 must be rejected"
  with Invalid_argument _ -> ()

let test_paley_witness_kec () =
  (* The k = 2 witness must verify 2-e.c. *)
  let w = Paley.witness ~k:2 in
  checkb "2-e.c." true (Extension.is_kec ~k:2 w)

let test_is_prime () =
  checkb "13 prime" true (Paley.is_prime 13);
  checkb "1 not prime" false (Paley.is_prime 1);
  checkb "91 = 7*13" false (Paley.is_prime 91)

(* ---------- Almost-sure decisions ---------- *)

(* qr-3 sentences need a 3-e.c. witness; random graphs reach 3-e.c. only
   around n ~ 120 (the expected number of unwitnessed extensions drops
   below 1 there). The search is expensive, so the battery shares one
   verified witness; one end-to-end [decide] call covers the API path. *)
let search_source () = Almost_sure.Search (rng (), 130)

let witness3 =
  lazy
    (match
       Almost_sure.find_kec_witness ~rng:(rng ()) ~k:3 ~size:130 ~attempts:200
     with
    | Some g -> g
    | None -> Alcotest.fail "no 3-e.c. witness found at size 130")

let battery =
  [
    (* Any two vertices have a common in-neighbour: a.s. true. *)
    ("forall x y. exists z. E(z,x) & E(z,y)", true);
    ("exists x y. E(x,y)", true);
    (* The graph is complete: a.s. false. *)
    ("forall x y. x = y | E(x,y)", false);
    (* Isolated vertex exists: a.s. false. *)
    ("exists x. forall y. !E(x,y)", false);
    (* Triangle exists: a.s. true. *)
    ("exists x y z. E(x,y) & E(y,z) & E(x,z)", true);
  ]

let test_decide_battery () =
  let w = Lazy.force witness3 in
  List.iter
    (fun (sentence, expected) ->
      checkb sentence expected (Eval.sat w (f sentence)))
    battery;
  (* One end-to-end decide() call (its own witness search). *)
  checkb "decide() end to end" true
    (Almost_sure.decide ~source:(search_source ())
       (f "exists x y z. E(x,y) & E(y,z) & E(x,z)"))

let test_decide_small_paley () =
  (* qr <= 2 sentences decided on the deterministic Paley witness agree
     with the searched witness. *)
  List.iter
    (fun sentence ->
      let phi = f sentence in
      checkb sentence
        (Almost_sure.decide ~source:Almost_sure.Paley phi)
        (Almost_sure.decide ~source:(search_source ()) phi))
    [ "exists x y. E(x,y)"; "forall x. exists y. E(x,y)"; "exists x. E(x,x)" ]

let test_decide_matches_montecarlo () =
  (* The decided value matches the empirical trend at n = 32. *)
  let w = Lazy.force witness3 in
  List.iter
    (fun sentence ->
      let phi = f sentence in
      let decided = if Eval.sat w phi then 1.0 else 0.0 in
      (* Sample the same measure the decision procedure models: undirected
         loop-free G(n, 1/2). *)
      let est =
        Estimator.mu_with ~rng:(rng ()) ~trials:200
          ~sample:(fun rng -> Gen.random_undirected_graph ~rng 32 0.5)
          (fun s -> Eval.sat s phi)
      in
      checkb sentence true (Float.abs (decided -. est) < 0.35))
    (List.map fst battery)

let test_decide_rejects () =
  (try
     ignore (Almost_sure.decide (f "E(x,y)"));
     Alcotest.fail "free variables must be rejected"
   with Invalid_argument _ -> ());
  try
    ignore (Almost_sure.decide (f "exists x. P(x)"));
    Alcotest.fail "non-graph signature must be rejected"
  with Invalid_argument _ -> ()

let test_find_kec_witness () =
  match Almost_sure.find_kec_witness ~rng:(rng ()) ~k:2 ~size:30 ~attempts:50 with
  | None -> Alcotest.fail "should find a 2-e.c. graph at size 30"
  | Some g -> checkb "verified" true (Extension.is_kec ~k:2 g)

(* ---------- The 0-1 dichotomy as a property ---------- *)

let gen_sentence_qr2 =
  (* Random qr <= 2 graph sentences built from a template set. *)
  QCheck2.Gen.oneofl
    (List.map f
       [
         "exists x. E(x,x)";
         "forall x. exists y. E(x,y)";
         "exists x y. E(x,y) & E(y,x)";
         "forall x y. E(x,y) -> E(y,x)";
         "exists x. forall y. E(x,y) | x = y";
         "forall x. exists y. E(x,y) & x != y";
       ])

let prop_zero_one_dichotomy =
  QCheck2.Test.make ~count:12 ~name:"decided mu is 0 or 1 and stable across witnesses"
    gen_sentence_qr2 (fun phi ->
      let a = Almost_sure.decide ~source:(Almost_sure.Search (rng (), 35)) phi in
      let b =
        Almost_sure.decide
          ~source:(Almost_sure.Search (Random.State.make [| 99 |], 45))
          phi
      in
      a = b)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_zero_one_dichotomy ]

let () =
  Alcotest.run "fmtk_zeroone"
    [
      ( "estimator",
        [
          Alcotest.test_case "Q1 complete graph" `Quick test_mu_complete_graph;
          Alcotest.test_case "Q2 tends to one" `Quick test_mu_q2_tends_to_one;
          Alcotest.test_case "EVEN alternates" `Quick test_mu_even_alternates;
          Alcotest.test_case "errors" `Quick test_mu_errors;
        ] );
      ( "extension",
        [
          Alcotest.test_case "small graphs" `Quick test_kec_small;
          Alcotest.test_case "failure witness" `Quick test_kec_failure_witness;
          Alcotest.test_case "matches FO axioms" `Quick test_kec_matches_axiom;
          Alcotest.test_case "sigma extension" `Quick test_sigma_extension;
        ] );
      ( "paley",
        [
          Alcotest.test_case "structure" `Quick test_paley_structure;
          Alcotest.test_case "witness is k-e.c." `Quick test_paley_witness_kec;
          Alcotest.test_case "primality" `Quick test_is_prime;
        ] );
      ( "almost-sure",
        [
          Alcotest.test_case "battery" `Slow test_decide_battery;
          Alcotest.test_case "Paley vs searched" `Slow test_decide_small_paley;
          Alcotest.test_case "matches Monte-Carlo" `Slow test_decide_matches_montecarlo;
          Alcotest.test_case "input validation" `Quick test_decide_rejects;
          Alcotest.test_case "witness search" `Quick test_find_kec_witness;
        ] );
      ("properties", qcheck_cases);
    ]
