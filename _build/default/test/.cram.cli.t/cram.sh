  $ ../bin/fmtk_cli.exe eval cycle:6 "forall x. exists y. E(x,y)"
  $ ../bin/fmtk_cli.exe eval order:4 "exists x y. x < y" --ra
  $ ../bin/fmtk_cli.exe game order:4 order:5 --rounds 2
  $ ../bin/fmtk_cli.exe game order:2 order:3 --rounds 2 --distinguish
  $ ../bin/fmtk_cli.exe reduce --trick conn -n 5
  $ ../bin/fmtk_cli.exe census chain:5 --radius 1
  $ ../bin/fmtk_cli.exe hanf cycle:14 ../data/two_cycles.fmtk --radius 2
  $ ../bin/fmtk_cli.exe circuit "exists x. E(x,x)" -n 4
  $ ../bin/fmtk_cli.exe datalog chain:4 --program tc
  $ ../bin/fmtk_cli.exe ifp chain:4 --query tc
  $ ../bin/fmtk_cli.exe qbf -n 2
  $ ../bin/fmtk_cli.exe mso cycle:6 --query conn
  $ ../bin/fmtk_cli.exe mso order:6 --query even
