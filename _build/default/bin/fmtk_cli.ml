(* fmtk — command-line front end for the finite model theory toolbox.

   Structures are given either as files (see Structure_io) or as generator
   specs like "cycle:8", "order:5", "chain:6", "set:4", "complete:3",
   "tree:3", "grid:3x4", "random:20:0.3:7", "paley:13". *)

module Signature = Fmtk_logic.Signature
module Formula = Fmtk_logic.Formula
module Parser = Fmtk_logic.Parser
module Structure = Fmtk_structure.Structure
module Structure_io = Fmtk_structure.Structure_io
module Tuple = Fmtk_structure.Tuple
module Gen = Fmtk_structure.Gen
module Graph = Fmtk_structure.Graph
module Eval = Fmtk_eval.Eval
module Compile = Fmtk_db.Compile
module Ef = Fmtk_games.Ef
module Distinguish = Fmtk_games.Distinguish
module Neighborhood = Fmtk_locality.Neighborhood
module Hanf = Fmtk_locality.Hanf
module Estimator = Fmtk_zeroone.Estimator
module Almost_sure = Fmtk_zeroone.Almost_sure
module Paley = Fmtk_zeroone.Paley
module Fo_circuit = Fmtk_circuits.Fo_circuit
module Engine = Fmtk_datalog.Engine
module Programs = Fmtk_datalog.Programs

open Cmdliner

(* ---- structure argument ---- *)

let parse_spec spec =
  match String.split_on_char ':' spec with
  | [ "set"; n ] -> Ok (Gen.set (int_of_string n))
  | [ "order"; n ] -> Ok (Gen.linear_order (int_of_string n))
  | [ "chain"; n ] | [ "successor"; n ] -> Ok (Gen.successor (int_of_string n))
  | [ "cycle"; n ] -> Ok (Gen.cycle (int_of_string n))
  | [ "complete"; n ] -> Ok (Gen.complete (int_of_string n))
  | [ "tree"; d ] -> Ok (Gen.binary_tree (int_of_string d))
  | [ "paley"; q ] -> Ok (Paley.graph (int_of_string q))
  | [ "grid"; dims ] -> (
      match String.split_on_char 'x' dims with
      | [ w; h ] -> Ok (Gen.grid (int_of_string w) (int_of_string h))
      | _ -> Error (`Msg "grid spec is grid:WxH"))
  | [ "random"; n; p; seed ] ->
      let rng = Random.State.make [| int_of_string seed |] in
      Ok (Gen.random_graph ~rng (int_of_string n) (float_of_string p))
  | _ -> (
      match Structure_io.load spec with
      | Ok s -> Ok s
      | Error e -> Error (`Msg e))

let structure_conv =
  let parse spec =
    match parse_spec spec with
    | Ok s -> Ok s
    | Error (`Msg _) as e -> e
    | exception e -> Error (`Msg (Printexc.to_string e))
  in
  Arg.conv (parse, fun ppf s -> Format.fprintf ppf "<structure n=%d>" (Structure.size s))

let formula_conv =
  let parse s =
    match Parser.parse s with Ok f -> Ok f | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, Formula.pp)

let structure_arg ~name ~doc idx =
  Arg.(required & pos idx (some structure_conv) None & info [] ~docv:name ~doc)

let formula_arg idx =
  Arg.(
    required
    & pos idx (some formula_conv) None
    & info [] ~docv:"FORMULA" ~doc:"First-order formula (fmtk syntax).")

(* ---- eval ---- *)

let eval_cmd =
  let run s phi use_ra =
    let fv = Formula.free_vars phi in
    if fv = [] then
      let v = if use_ra then Compile.sat s phi else Eval.sat s phi in
      Format.printf "%b@." v
    else begin
      let vars, answers =
        if use_ra then Compile.answers s phi else Eval.answers s phi
      in
      Format.printf "answers over (%s):@." (String.concat "," vars);
      Tuple.Set.iter (fun t -> Format.printf "%a@." Tuple.pp t) answers
    end
  in
  let ra =
    Arg.(value & flag & info [ "ra" ] ~doc:"Evaluate through the relational-algebra compiler.")
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate an FO formula on a structure")
    Term.(
      const run
      $ structure_arg ~name:"STRUCTURE" ~doc:"Structure (file or generator spec)." 0
      $ formula_arg 1 $ ra)

(* ---- game ---- *)

let game_cmd =
  let run a b rounds distinguish =
    let wins = Ef.duplicator_wins ~rounds a b in
    Format.printf "duplicator %s the %d-round game@."
      (if wins then "wins" else "loses")
      rounds;
    if distinguish && not wins then
      match Distinguish.sentence ~rounds a b with
      | Some phi ->
          Format.printf "distinguishing sentence (qr ≤ %d): %a@." rounds
            Formula.pp phi
      | None -> ()
  in
  let rounds =
    Arg.(
      required
      & opt (some int) None
      & info [ "n"; "rounds" ] ~docv:"N" ~doc:"Number of rounds.")
  in
  let distinguish =
    Arg.(
      value & flag
      & info [ "distinguish" ]
          ~doc:"When the spoiler wins, print a separating sentence.")
  in
  Cmd.v
    (Cmd.info "game" ~doc:"Play the Ehrenfeucht-Fraïssé game on two structures")
    Term.(
      const run
      $ structure_arg ~name:"LEFT" ~doc:"First structure." 0
      $ structure_arg ~name:"RIGHT" ~doc:"Second structure." 1
      $ rounds $ distinguish)

(* ---- locality ---- *)

let census_cmd =
  let run s radius =
    let reg = Neighborhood.create_registry () in
    let census = Neighborhood.census reg s ~radius in
    Format.printf "radius-%d neighborhood census (%d types):@." radius
      (List.length census);
    List.iter
      (fun (id, count) ->
        let rep = Neighborhood.representative reg id in
        Format.printf "  type %d: %d element(s), ball size %d@." id count
          (Structure.size rep))
      census
  in
  let radius =
    Arg.(
      required & opt (some int) None
      & info [ "r"; "radius" ] ~docv:"R" ~doc:"Neighborhood radius.")
  in
  Cmd.v
    (Cmd.info "census" ~doc:"Neighborhood-type census of a structure")
    Term.(
      const run
      $ structure_arg ~name:"STRUCTURE" ~doc:"Structure." 0
      $ radius)

let hanf_cmd =
  let run a b radius threshold =
    match threshold with
    | None ->
        Format.printf "G ⇆%d G': %b@." radius (Hanf.equiv ~radius a b)
    | Some m ->
        Format.printf "G ⇆*%d,%d G': %b@." m radius
          (Hanf.threshold_equiv ~threshold:m ~radius a b)
  in
  let radius =
    Arg.(
      required & opt (some int) None
      & info [ "r"; "radius" ] ~docv:"R" ~doc:"Neighborhood radius.")
  in
  let threshold =
    Arg.(
      value & opt (some int) None
      & info [ "m"; "threshold" ] ~docv:"M"
          ~doc:"Use the threshold variant ⇆*m,r.")
  in
  Cmd.v
    (Cmd.info "hanf" ~doc:"Test Hanf equivalence of two structures")
    Term.(
      const run
      $ structure_arg ~name:"LEFT" ~doc:"First structure." 0
      $ structure_arg ~name:"RIGHT" ~doc:"Second structure." 1
      $ radius $ threshold)

(* ---- zeroone ---- *)

let mu_cmd =
  let run phi n trials seed =
    let rng = Random.State.make [| seed |] in
    let m = Estimator.mu_formula ~rng ~trials Signature.graph n phi in
    Format.printf "μ_%d ≈ %.4f  (%d trials)@." n m trials
  in
  let n =
    Arg.(required & opt (some int) None & info [ "n" ] ~docv:"N" ~doc:"Domain size.")
  in
  let trials =
    Arg.(value & opt int 200 & info [ "trials" ] ~docv:"T" ~doc:"Sample count.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"RNG seed.") in
  Cmd.v
    (Cmd.info "mu" ~doc:"Monte-Carlo estimate of μ_n for a graph sentence")
    Term.(const run $ formula_arg 0 $ n $ trials $ seed)

let decide_cmd =
  let run phi size seed =
    let source =
      match size with
      | Some sz -> Almost_sure.Search (Random.State.make [| seed |], sz)
      | None -> Almost_sure.Paley
    in
    Format.printf "μ = %.0f@." (Almost_sure.mu ~source phi)
  in
  let size =
    Arg.(
      value & opt (some int) None
      & info [ "search" ] ~docv:"N"
          ~doc:"Search random graphs of size N for a k-e.c. witness instead \
                of using a Paley graph.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"RNG seed.") in
  Cmd.v
    (Cmd.info "decide"
       ~doc:"Decide the almost-sure value μ ∈ {0,1} of a graph sentence")
    Term.(const run $ formula_arg 0 $ size $ seed)

(* ---- circuit ---- *)

let circuit_cmd =
  let run phi size =
    let compiled = Fo_circuit.compile Signature.graph ~size phi in
    Format.printf "domain size %d: circuit size %d, depth %d, %d inputs@."
      size
      (Fo_circuit.circuit_size compiled)
      (Fo_circuit.circuit_depth compiled)
      (Fo_circuit.input_count compiled)
  in
  let size =
    Arg.(required & opt (some int) None & info [ "n" ] ~docv:"N" ~doc:"Domain size.")
  in
  Cmd.v
    (Cmd.info "circuit" ~doc:"Compile a graph sentence to its AC0 circuit")
    Term.(const run $ formula_arg 0 $ size)

(* ---- datalog ---- *)

let datalog_cmd =
  let run s program strategy =
    let prog, pred =
      match program with
      | "tc" -> (Programs.transitive_closure, "tc")
      | "sg" -> (Programs.same_generation, "sg")
      | "unreach" -> (Programs.unreachable, "unreach")
      | other -> failwith (Printf.sprintf "unknown program %S (tc|sg|unreach)" other)
    in
    let db = Engine.Db.of_structure s in
    let result, stats =
      match strategy with
      | "naive" -> Engine.naive prog db
      | _ -> Engine.seminaive prog db
    in
    let tuples = Engine.Db.find result pred in
    Format.printf "%s: %d tuples (%d iterations, %d join steps)@." pred
      (Tuple.Set.cardinal tuples)
      stats.Engine.iterations stats.Engine.join_work;
    Tuple.Set.iter (fun t -> Format.printf "%a@." Tuple.pp t) tuples
  in
  let program =
    Arg.(
      value & opt string "tc"
      & info [ "program" ] ~docv:"P" ~doc:"Program: tc, sg, or unreach.")
  in
  let strategy =
    Arg.(
      value & opt string "seminaive"
      & info [ "strategy" ] ~docv:"S" ~doc:"naive or seminaive.")
  in
  Cmd.v
    (Cmd.info "datalog" ~doc:"Run a canonical Datalog program on a structure")
    Term.(
      const run
      $ structure_arg ~name:"STRUCTURE" ~doc:"EDB structure." 0
      $ program $ strategy)

(* ---- reduce ---- *)

let reduce_cmd =
  let run trick n =
    let ord = Gen.linear_order n in
    match trick with
    | "conn" ->
        let g = Fmtk.Reductions.conn_construction ord in
        Format.printf "%a@." Structure.pp g;
        Format.printf "components: %d (order size %d is %s)@."
          (Graph.component_count g) n
          (if n mod 2 = 0 then "even" else "odd")
    | "acycl" ->
        let g = Fmtk.Reductions.acycl_construction ord in
        Format.printf "%a@." Structure.pp g;
        Format.printf "acyclic: %b@." (Graph.acyclic g)
    | other -> failwith (Printf.sprintf "unknown trick %S (conn|acycl)" other)
  in
  let trick =
    Arg.(value & opt string "conn" & info [ "trick" ] ~docv:"T" ~doc:"conn or acycl.")
  in
  let n =
    Arg.(required & opt (some int) None & info [ "n" ] ~docv:"N" ~doc:"Order size.")
  in
  Cmd.v
    (Cmd.info "reduce" ~doc:"Apply a §3.3 order-to-graph construction")
    Term.(const run $ trick $ n)

(* ---- qbf ---- *)

let qbf_cmd =
  let run n =
    let q = Fmtk_qbf.Qbf.pigeonhole_valid n in
    let direct = Fmtk_qbf.Qbf.solve q in
    let via_fo = Fmtk_qbf.Reduction.decide_via_fo q in
    Format.printf
      "pigeonhole(%d): %d quantifiers, QBF solver: %b, via FO model \
       checking: %b@."
      n
      (Fmtk_qbf.Qbf.quantifier_count q)
      direct via_fo
  in
  let n =
    Arg.(value & opt int 2 & info [ "n" ] ~docv:"N" ~doc:"Pigeonhole size.")
  in
  Cmd.v
    (Cmd.info "qbf"
       ~doc:"Solve a QBF directly and through the PSPACE-hardness reduction")
    Term.(const run $ n)

(* ---- mso / ifp ---- *)

let mso_cmd =
  let run s query =
    let phi =
      match query with
      | "even" -> Fmtk_so.So_queries.even_on_orders
      | "conn" -> Fmtk_so.So_queries.connectivity
      | "3col" -> Fmtk_so.So_queries.three_colorable
      | "ham" -> Fmtk_so.So_queries.hamiltonian_path
      | other -> failwith (Printf.sprintf "unknown MSO query %S (even|conn|3col|ham)" other)
    in
    Format.printf "%b@." (Fmtk_so.So_eval.sat s phi)
  in
  let query =
    Arg.(
      value & opt string "conn"
      & info [ "query" ] ~docv:"Q"
          ~doc:"even (over orders), conn, 3col, or ham (∃SO).")
  in
  Cmd.v
    (Cmd.info "mso" ~doc:"Evaluate a second-order query on a structure")
    Term.(
      const run
      $ structure_arg ~name:"STRUCTURE" ~doc:"Structure." 0
      $ query)

let ifp_cmd =
  let run s query =
    let module Fp = Fmtk_fixpoint.Fp_formula in
    let module Fp_eval = Fmtk_fixpoint.Fp_eval in
    let stats = Fp_eval.new_stats () in
    (match query with
    | "tc" ->
        let tuples = Fp_eval.answers ~stats s Fp.transitive_closure ~vars:[ "u"; "v" ] in
        Format.printf "tc: %d pairs@." (Tuple.Set.cardinal tuples);
        Tuple.Set.iter (fun t -> Format.printf "%a@." Tuple.pp t) tuples
    | "conn" -> Format.printf "%b@." (Fp_eval.sat ~stats s Fp.connectivity)
    | "even" -> Format.printf "%b@." (Fp_eval.sat ~stats s Fp.even_on_orders)
    | other -> failwith (Printf.sprintf "unknown IFP query %S (tc|conn|even)" other));
    Format.printf "(%d fixpoint stages, %d tuples tested)@." stats.Fp_eval.stages
      stats.Fp_eval.tuples_tested
  in
  let query =
    Arg.(
      value & opt string "tc"
      & info [ "query" ] ~docv:"Q" ~doc:"tc, conn, or even (over orders).")
  in
  Cmd.v
    (Cmd.info "ifp" ~doc:"Evaluate a fixpoint-logic query on a structure")
    Term.(
      const run
      $ structure_arg ~name:"STRUCTURE" ~doc:"Structure." 0
      $ query)

let main =
  let info =
    Cmd.info "fmtk" ~version:"1.0.0"
      ~doc:"The finite model theory toolbox of a database theoretician"
  in
  Cmd.group info
    [
      eval_cmd;
      game_cmd;
      census_cmd;
      hanf_cmd;
      mu_cmd;
      decide_cmd;
      circuit_cmd;
      datalog_cmd;
      reduce_cmd;
      qbf_cmd;
      mso_cmd;
      ifp_cmd;
    ]

let () = exit (Cmd.eval main)
