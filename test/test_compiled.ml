(* Tests for Fmtk_eval.Compiled (the compile-then-run engine of E23) and
   Fmtk_structure.Index, with the naive Eval interpreter as differential
   oracle, plus EF solver equivalence across memo/parallel configs. *)

module Formula = Fmtk_logic.Formula
module Parser = Fmtk_logic.Parser
module Signature = Fmtk_logic.Signature
module Structure = Fmtk_structure.Structure
module Tuple = Fmtk_structure.Tuple
module Index = Fmtk_structure.Index
module Gen = Fmtk_structure.Gen
module Eval = Fmtk_eval.Eval
module Compiled = Fmtk_eval.Compiled
module Ef = Fmtk_games.Ef
open Formula

let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg
let f = Parser.parse_exn

let graph_of edges ~size =
  Structure.make Signature.graph ~size
    [ ("E", List.map (fun (u, v) -> [| u; v |]) edges) ]

(* ---------- Compiled engine: basic semantics ---------- *)

let test_sentences () =
  let s = graph_of [ (0, 1); (1, 2) ] ~size:3 in
  List.iter
    (fun phi ->
      checkb (Formula.to_string phi) (Eval.sat s phi) (Compiled.sat s phi))
    [
      True;
      False;
      f "exists x y. E(x,y)";
      f "forall x. exists y. E(x,y)";
      f "exists x. forall y. !E(y,x)";
      f "forall x y. E(x,y) -> E(y,x)";
      f "exists x. x = x & !E(x,x)";
    ]

let test_free_vars_and_run () =
  let s = graph_of [ (0, 1) ] ~size:2 in
  let ct = Compiled.compile s (f "E(x,y)") in
  Alcotest.(check (list string)) "slot order" [ "x"; "y" ] (Compiled.free_vars ct);
  checkb "edge" true (Compiled.run ct [| 0; 1 |]);
  checkb "non-edge" false (Compiled.run ct [| 1; 0 |]);
  checkb "holds env" true (Compiled.holds ct ~env:[ ("y", 1); ("x", 0) ]);
  (try
     ignore (Compiled.run ct [| 0 |]);
     Alcotest.fail "arity mismatch must raise"
   with Invalid_argument _ -> ());
  (* compile_with: explicit order and unconstrained extra slots. *)
  let ct2 = Compiled.compile_with s ~vars:[ "y"; "x"; "z" ] (f "E(x,y)") in
  checkb "reordered" true (Compiled.run ct2 [| 1; 0; 0 |]);
  checki "z ranges free" 2
    (Tuple.Set.cardinal (Compiled.definable_relation_of ct2))

let test_constants () =
  let sg = Signature.make ~consts:[ "a"; "b" ] [ ("E", 2) ] in
  let s =
    Structure.make sg ~size:3 ~consts:[ ("a", 0); ("b", 2) ]
      [ ("E", [ [| 0; 1 |]; [| 1; 2 |] ]) ]
  in
  List.iter
    (fun phi ->
      checkb (Formula.to_string phi) (Eval.sat s phi) (Compiled.sat s phi))
    [ f "exists x. E('a,x)"; f "E('a,'b)"; f "'a != 'b" ]

let test_errors () =
  let s = graph_of [] ~size:2 in
  let expect_invalid phi =
    try
      ignore (Compiled.sat s phi);
      Alcotest.fail "expected Invalid_argument"
    with Invalid_argument _ -> ()
  in
  expect_invalid (exists_many [ "x"; "y" ] (rel "R" [ v "x"; v "y" ]));
  expect_invalid (f "exists x. x = 'c");
  expect_invalid (f "E(x,y)");
  (* Wrong-arity atom is well-defined: simply false, as for Eval. *)
  let phi = exists "x" (rel "E" [ v "x" ]) in
  checkb "wrong arity false" (Eval.sat s phi) (Compiled.sat s phi)

(* ---------- Index unit tests ---------- *)

let test_index_small_arities () =
  (* Arity <= 2 over a small domain: the bitset representation. *)
  let t1 = Index.build ~size:5 ~arity:1 (Tuple.Set.of_list [ [| 0 |]; [| 3 |] ]) in
  checkb "mem1 hit" true (Index.mem1 t1 3);
  checkb "mem1 miss" false (Index.mem1 t1 2);
  checkb "mem1 out of domain" false (Index.mem1 t1 17);
  checkb "mem agrees" true (Index.mem t1 [| 0 |]);
  checkb "wrong arity" false (Index.mem t1 [| 0; 0 |]);
  let t2 = Index.build ~size:4 ~arity:2 (Tuple.Set.of_list [ [| 1; 2 |] ]) in
  checkb "mem2 hit" true (Index.mem2 t2 1 2);
  checkb "mem2 miss" false (Index.mem2 t2 2 1);
  checkb "mem2 negative" false (Index.mem2 t2 (-1) 2);
  let t0 = Index.build ~size:3 ~arity:0 (Tuple.Set.singleton [||]) in
  checkb "nullary present" true (Index.mem t0 [||]);
  let e0 = Index.build ~size:3 ~arity:0 Tuple.Set.empty in
  checkb "nullary absent" false (Index.mem e0 [||])

let test_index_higher_arities () =
  (* Arity 3 packs into one int; a huge domain forces the generic
     (tuple-keyed) fallback. Same answers either way. *)
  let tuples = Tuple.Set.of_list [ [| 0; 1; 2 |]; [| 2; 2; 2 |] ] in
  let packed = Index.build ~size:3 ~arity:3 tuples in
  let generic = Index.build ~size:(1 lsl 22) ~arity:3 tuples in
  List.iter
    (fun (tup, expect) ->
      checkb "packed" expect (Index.mem packed tup);
      checkb "generic" expect (Index.mem generic tup))
    [
      ([| 0; 1; 2 |], true);
      ([| 2; 2; 2 |], true);
      ([| 1; 0; 2 |], false);
      ([| 0; 1 |], false);
      ([| 0; 1; 2; 0 |], false);
      ([| 0; 1; 3 |], false);
    ];
  checkb "packed out of its domain" false (Index.mem packed [| 0; 1; 5 |]);
  checki "arity" 3 (Index.arity packed)

let test_index_of_tuples () =
  let t = Index.of_tuples ~arity:2 (Tuple.Set.of_list [ [| 7; 7 |] ]) in
  checkb "inferred bound covers max" true (Index.mem t [| 7; 7 |]);
  checkb "beyond inferred bound" false (Index.mem t [| 8; 8 |]);
  let e = Index.of_tuples ~arity:2 Tuple.Set.empty in
  checkb "empty set" false (Index.mem e [| 0; 0 |])

let test_probe_cache_invalidation () =
  let s = graph_of [ (0, 1) ] ~size:3 in
  checkb "probe before" true (Structure.probe s "E" [| 0; 1 |]);
  (* Derived structures must not inherit the parent's index cache. *)
  let s' = Structure.with_rel s "E" 2 (Tuple.Set.singleton [| 2; 2 |]) in
  checkb "old tuple gone" false (Structure.probe s' "E" [| 0; 1 |]);
  checkb "new tuple present" true (Structure.probe s' "E" [| 2; 2 |]);
  checkb "parent unchanged" true (Structure.probe s "E" [| 0; 1 |]);
  let sub, _ = Structure.induced s [ 0; 1 ] in
  checkb "induced re-indexed" true (Structure.probe sub "E" [| 0; 1 |]);
  (try
     ignore (Structure.probe s "R" [| 0 |]);
     Alcotest.fail "undeclared relation must raise"
   with Not_found -> ());
  (* probe = mem on every possible pair. *)
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          checkb "probe = mem"
            (Structure.mem s "E" [| x; y |])
            (Structure.probe s "E" [| x; y |]))
        (Structure.domain s))
    (Structure.domain s)

(* ---------- Differential: compiled vs naive on random inputs ---------- *)

let gen_graph =
  let open QCheck2.Gen in
  let* n = int_range 1 6 in
  let* edges =
    list_size (int_range 0 (n * 2))
      (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
  in
  return (graph_of edges ~size:n)

let gen_formula : Formula.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let open Formula in
  let var = oneofl [ "x"; "y"; "z" ] in
  sized_size (int_range 0 6)
  @@ fix (fun self n ->
         if n <= 0 then
           oneof
             [
               return True;
               return False;
               map2 (fun a b -> Eq (v a, v b)) var var;
               map2 (fun a b -> rel "E" [ v a; v b ]) var var;
             ]
         else
           oneof
             [
               map not_ (self (n - 1));
               map2 (fun a b -> And (a, b)) (self (n / 2)) (self (n / 2));
               map2 (fun a b -> Or (a, b)) (self (n / 2)) (self (n / 2));
               map2 (fun a b -> Implies (a, b)) (self (n / 2)) (self (n / 2));
               map2 (fun a b -> Iff (a, b)) (self (n / 2)) (self (n / 2));
               map2 (fun x g -> exists x g) var (self (n - 1));
               map2 (fun x g -> forall x g) var (self (n - 1));
             ])

let agree g phi =
  (* Compare full answer sets: this checks [holds] on every assignment of
     the free variables, not just one. *)
  let vars, naive = Eval.answers g phi in
  let cvars, compiled = Compiled.answers g phi in
  vars = cvars && Tuple.Set.equal naive compiled

let prop_differential =
  (* The acceptance bar: agreement on >= 500 random (formula, structure)
     pairs. *)
  QCheck2.Test.make ~count:500
    ~name:"compiled agrees with naive Eval on random (structure, formula)"
    QCheck2.Gen.(pair gen_graph gen_formula)
    (fun (g, phi) -> agree g phi)

let prop_differential_roundtrip =
  QCheck2.Test.make ~count:200
    ~name:"compiled agrees with naive Eval after parser round-trip"
    QCheck2.Gen.(pair gen_graph gen_formula)
    (fun (g, phi) ->
      let phi' = Parser.parse_exn (Formula.to_string phi) in
      agree g phi')

let prop_definable_relation =
  QCheck2.Test.make ~count:200
    ~name:"compiled definable_relation matches naive under var reorder"
    QCheck2.Gen.(pair gen_graph gen_formula)
    (fun (g, phi) ->
      let vars = [ "z"; "y"; "x" ] in
      Tuple.Set.equal
        (Eval.definable_relation g phi ~vars)
        (Compiled.definable_relation g phi ~vars))

(* ---------- EF solver: config equivalence ---------- *)

(* All config corners, including a forced multi-domain fan-out so the
   [Domain.spawn] path runs even where the machine reports one core. *)
let ef_configs =
  [
    ( "memo seq",
      { Ef.memo = true; parallel = false; workers = None; orbit = true } );
    ( "no-memo seq",
      { Ef.memo = false; parallel = false; workers = None; orbit = true } );
    ( "memo seq no-orbit",
      { Ef.memo = true; parallel = false; workers = None; orbit = false } );
    ( "no-memo seq no-orbit",
      { Ef.memo = false; parallel = false; workers = None; orbit = false } );
    ( "memo par3",
      { Ef.memo = true; parallel = true; workers = Some 3; orbit = true } );
    ( "memo par3 no-orbit",
      { Ef.memo = true; parallel = true; workers = Some 3; orbit = false } );
    ( "no-memo par2",
      { Ef.memo = false; parallel = true; workers = Some 2; orbit = true } );
    ("auto", Ef.default_config);
  ]

let test_ef_config_equivalence () =
  let games =
    [
      ("L5 vs L6 r2", Gen.linear_order 5, Gen.linear_order 6, 2);
      ("L7 vs L8 r3", Gen.linear_order 7, Gen.linear_order 8, 3);
      ("L7 vs L7 r3", Gen.linear_order 7, Gen.linear_order 7, 3);
      ("C6 vs C7 r2", Gen.cycle 6, Gen.cycle 7, 2);
      ("C4 vs C4 r3", Gen.cycle 4, Gen.cycle 4, 3);
      ("K3 vs L3 r2", Gen.complete 3, Gen.linear_order 3, 2);
    ]
  in
  List.iter
    (fun (name, a, b, rounds) ->
      let reference = Ef.duplicator_wins ~rounds a b in
      List.iter
        (fun (cname, config) ->
          checkb
            (Printf.sprintf "%s [%s]" name cname)
            reference
            (Ef.duplicator_wins ~config ~rounds a b))
        ef_configs)
    games

let test_ef_from_position_equivalence () =
  let a = Gen.linear_order 6 and b = Gen.linear_order 7 in
  List.iter
    (fun start ->
      let reference = Ef.duplicator_wins_from ~rounds:2 a b start in
      List.iter
        (fun (cname, config) ->
          checkb
            (Printf.sprintf "from %d pairs [%s]" (List.length start) cname)
            reference
            (Ef.duplicator_wins_from ~config ~rounds:2 a b start))
        ef_configs)
    [ []; [ (0, 0) ]; [ (0, 0); (5, 6) ]; [ (0, 6) ] ]

let prop_ef_random_graphs =
  let gen =
    let open QCheck2.Gen in
    let graph =
      let* n = int_range 1 5 in
      let* edges =
        list_size (int_range 0 (n * 2))
          (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      in
      return (graph_of edges ~size:n)
    in
    pair graph graph
  in
  QCheck2.Test.make ~count:100
    ~name:"EF verdict independent of memo/parallel on random graph pairs" gen
    (fun (a, b) ->
      let reference = Ef.duplicator_wins ~rounds:2 a b in
      List.for_all
        (fun (_, config) ->
          Ef.duplicator_wins ~config ~rounds:2 a b = reference)
        ef_configs)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_differential;
      prop_differential_roundtrip;
      prop_definable_relation;
      prop_ef_random_graphs;
    ]

let () =
  Alcotest.run "fmtk_compiled"
    [
      ( "compiled",
        [
          Alcotest.test_case "sentences" `Quick test_sentences;
          Alcotest.test_case "free vars and run" `Quick test_free_vars_and_run;
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
      ( "index",
        [
          Alcotest.test_case "small arities" `Quick test_index_small_arities;
          Alcotest.test_case "higher arities" `Quick test_index_higher_arities;
          Alcotest.test_case "of_tuples" `Quick test_index_of_tuples;
          Alcotest.test_case "probe cache invalidation" `Quick
            test_probe_cache_invalidation;
        ] );
      ( "ef",
        [
          Alcotest.test_case "config equivalence" `Quick
            test_ef_config_equivalence;
          Alcotest.test_case "from-position equivalence" `Quick
            test_ef_from_position_equivalence;
        ] );
      ("differential", qcheck_cases);
    ]
