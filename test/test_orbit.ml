(* Tests for Fmtk_structure.Orbit and the orbit-pruned game solvers.

   The load-bearing claim is soundness: pruning spoiler moves and
   duplicator replies to automorphism-orbit representatives never changes
   a game verdict. The differential suite below checks it on a few
   hundred random structure pairs across symmetric, rigid and mixed
   families; the unit tests pin down the orbit partitions of the known
   families the closed-form strategies live on. *)

module Structure = Fmtk_structure.Structure
module Gen = Fmtk_structure.Gen
module Iso = Fmtk_structure.Iso
module Orbit = Fmtk_structure.Orbit
module Ef = Fmtk_games.Ef
module Strategy = Fmtk_games.Strategy
module Pebble = Fmtk_games.Pebble

let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg
let orbit_count t = List.length (Orbit.classes t)

(* ---------- Orbit partitions of known families ---------- *)

let test_known_families () =
  (* Directed cycles are vertex-transitive (Aut ⊇ rotations). *)
  List.iter
    (fun n ->
      let t = Orbit.make (Gen.cycle n) in
      checki (Printf.sprintf "C%d: one orbit" n) 1 (orbit_count t);
      checkb (Printf.sprintf "C%d not rigid" n) (n <= 1) (Orbit.rigid t))
    [ 3; 5; 8 ];
  (* Bare sets: Aut = S_n, one orbit. *)
  let s = Orbit.make (Gen.set 6) in
  checki "set 6: one orbit" 1 (orbit_count s);
  (* Linear orders are rigid: n singleton orbits, rigidity fast path. *)
  List.iter
    (fun n ->
      let t = Orbit.make (Gen.linear_order n) in
      checkb (Printf.sprintf "L%d rigid" n) true (Orbit.rigid t);
      checki (Printf.sprintf "L%d: n orbits" n) n (orbit_count t))
    [ 1; 4; 9 ];
  (* Successor chains are rigid too. *)
  checkb "S7 rigid" true (Orbit.rigid (Orbit.make (Gen.successor 7)));
  (* Complete binary trees: orbits are the levels (depth+1 of them). *)
  let bt = Orbit.make (Gen.binary_tree 2) in
  checki "depth-2 binary tree: 3 level orbits" 3 (orbit_count bt);
  let bt3 = Orbit.make (Gen.binary_tree 3) in
  checki "depth-3 binary tree: 4 level orbits" 4 (orbit_count bt3);
  (* Equal cycles in a disjoint union can be swapped: still one orbit.
     Unequal cycles cannot: one orbit per component. *)
  checki "C5 ⊎ C5: one orbit" 1
    (orbit_count (Orbit.make (Gen.union_of [ Gen.cycle 5; Gen.cycle 5 ])));
  checki "C4 ⊎ C6: two orbits" 2
    (orbit_count (Orbit.make (Gen.union_of [ Gen.cycle 4; Gen.cycle 6 ])))

let test_stabilizers () =
  (* Pinning one element of a directed cycle kills all rotations: the
     stabilizer is trivial, every orbit a singleton. *)
  let c8 = Orbit.make (Gen.cycle 8) in
  checkb "C8 stab {0} trivial" true (Orbit.trivial (Orbit.stabilizer c8 [ 0 ]));
  checkb "C8 root not trivial" false (Orbit.trivial (Orbit.root c8));
  (* Sets: the stabilizer of {1,3} has orbits {1}, {3}, {0,2,4}. *)
  let s5 = Orbit.make (Gen.set 5) in
  let st = Orbit.stabilizer s5 [ 1; 3 ] in
  checki "set 5 stab {1,3}: 3 orbits" 3 (List.length (Orbit.reps st));
  let ids = Orbit.orbit_ids st in
  checkb "pinned elements are singletons" true (ids.(1) = 1 && ids.(3) = 3);
  checkb "0,2,4 share an orbit" true (ids.(0) = ids.(2) && ids.(2) = ids.(4));
  (* Incremental refine agrees with the from-scratch stabilizer. *)
  let refined = Orbit.refine s5 (Orbit.refine s5 (Orbit.root s5) [ 1 ]) [ 3 ] in
  checkb "refine = stabilizer" true
    (Orbit.orbit_ids refined = Orbit.orbit_ids st);
  (* Rigid structures: refine is a no-op on the already-trivial partition. *)
  let l6 = Orbit.make (Gen.linear_order 6) in
  checkb "rigid refine stays trivial" true
    (Orbit.trivial (Orbit.refine l6 (Orbit.root l6) [ 2 ]))

(* ---------- Structural invariants on random structures ---------- *)

let random_structure rng =
  let pick = Random.State.int rng 6 in
  let n = 3 + Random.State.int rng 4 in
  match pick with
  | 0 -> Gen.cycle n
  | 1 -> Gen.set n
  | 2 -> Gen.linear_order n
  | 3 -> Gen.union_of [ Gen.cycle n; Gen.cycle (n + Random.State.int rng 2) ]
  | 4 -> Gen.binary_tree 2 (* depth 2: 7 nodes *)
  | _ -> Gen.random_graph ~rng n 0.3

let test_orbits_are_automorphic () =
  (* Witness check: i ~ j implies some automorphism maps i to j — found
     by the same complete search the module uses, but verified here as an
     actual automorphism of the original structure. *)
  let rng = Random.State.make [| 41 |] in
  for trial = 1 to 40 do
    let s = random_structure rng in
    let t = Orbit.make s in
    let ids = Orbit.orbit_ids (Orbit.root t) in
    Array.iteri
      (fun i id ->
        if id <> i then begin
          (* i shares an orbit with its root id: demand a witness. *)
          let pin e = Structure.expand_consts s [ ("__w", e) ] in
          match Iso.find_iso (pin id) (pin i) with
          | None ->
              Alcotest.failf "trial %d: no automorphism witness %d -> %d"
                trial id i
          | Some sigma ->
              checkb "witness is a bijection" true
                (List.sort_uniq compare (Array.to_list sigma)
                = List.init (Structure.size s) Fun.id)
        end)
      ids
  done

let test_orbits_refine_wl () =
  (* Automorphisms preserve WL colours, so orbits refine colour classes. *)
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 60 do
    let s = random_structure rng in
    let t = Orbit.make s in
    let ids = Orbit.orbit_ids (Orbit.root t) in
    let colors = Iso.wl_colors1 s in
    Array.iteri
      (fun i id ->
        checkb "same orbit, same WL colour" true (colors.(i) = colors.(id)))
      ids
  done

let test_stabilizer_refines_root () =
  let rng = Random.State.make [| 43 |] in
  for _ = 1 to 40 do
    let s = random_structure rng in
    let t = Orbit.make s in
    let n = Structure.size s in
    let pins = [ Random.State.int rng n ] in
    let root_ids = Orbit.orbit_ids (Orbit.root t) in
    let st_ids = Orbit.orbit_ids (Orbit.stabilizer t pins) in
    (* Stabilizer orbits sit inside root orbits, and pins are fixed. *)
    Array.iteri
      (fun i id -> checkb "stab refines root" true (root_ids.(i) = root_ids.(id)))
      st_ids;
    List.iter (fun p -> checki "pin is a singleton" p st_ids.(p)) pins
  done

(* ---------- Differential: orbit pruning never changes verdicts ---------- *)

let test_ef_differential () =
  let rng = Random.State.make [| 4242 |] in
  let disagreements = ref [] in
  for trial = 1 to 240 do
    let a = random_structure rng in
    let b =
      (* Half the time a related structure (same family flavour), else
         independent — related pairs exercise deep games. *)
      if Random.State.bool rng then random_structure rng
      else
        match Random.State.int rng 3 with
        | 0 -> a
        | 1 -> Gen.cycle (Structure.size a)
        | _ -> Gen.set (Structure.size a)
    in
    let rounds = if Structure.size a + Structure.size b > 10 then 2 else 3 in
    let seq orbit =
      { Ef.memo = true; parallel = false; workers = None; orbit }
    in
    let reference = Ef.duplicator_wins ~config:(seq false) ~rounds a b in
    let pruned = Ef.duplicator_wins ~config:(seq true) ~rounds a b in
    if reference <> pruned then disagreements := trial :: !disagreements;
    (* A slice also exercises the parallel work-stealing path with a
       forced fan-out and the shared memo. *)
    if trial mod 8 = 0 then begin
      let par =
        Ef.duplicator_wins
          ~config:{ Ef.memo = true; parallel = true; workers = Some 3; orbit = true }
          ~rounds a b
      in
      if par <> reference then disagreements := trial :: !disagreements
    end
  done;
  checkb
    (Printf.sprintf "EF orbit-pruned = unpruned (disagreements: %s)"
       (String.concat "," (List.map string_of_int !disagreements)))
    true (!disagreements = [])

let test_pebble_differential () =
  let rng = Random.State.make [| 777 |] in
  for _ = 1 to 60 do
    let a = random_structure rng in
    let b = if Random.State.bool rng then a else random_structure rng in
    let k = 2 + Random.State.int rng 1 in
    let rounds = 3 in
    let cfg orbit = { Pebble.default_config with orbit } in
    checkb "pebble orbit-pruned = unpruned"
      (Pebble.duplicator_wins ~config:(cfg false) ~pebbles:k ~rounds a b)
      (Pebble.duplicator_wins ~config:(cfg true) ~pebbles:k ~rounds a b)
  done

let test_strategy_verify_symmetry () =
  (* Symmetry-pruned strategy verification reaches the same conclusion. *)
  let cases =
    [
      ("sets 4/4 r3", Gen.set 4, Gen.set 4, 3);
      ("sets 3/4 r3", Gen.set 3, Gen.set 4, 3);
      ("sets 2/4 r3", Gen.set 2, Gen.set 4, 3);
    ]
  in
  List.iter
    (fun (name, a, b, rounds) ->
      let s = Strategy.sets a b in
      let plain = Strategy.verify ~rounds a b s in
      let pruned = Strategy.verify ~symmetry:true ~rounds a b s in
      checkb name (plain = None) (pruned = None))
    cases;
  (* Cycles: the closed-form strategy wins C_m vs C_k for m,k >= 2^(r+2). *)
  let a = Gen.cycle 16 and b = Gen.cycle 17 in
  let s = Strategy.directed_cycles 16 17 in
  checkb "cycles strategy survives pruned verification" true
    (Strategy.verify ~symmetry:true ~rounds:2 a b s = None);
  (* A deliberately losing strategy must still be caught. *)
  let bad ~rounds_left:_ _ _ _ = 0 in
  checkb "losing strategy still caught under symmetry" false
    (Strategy.verify ~symmetry:true ~rounds:2 (Gen.linear_order 3)
       (Gen.linear_order 4) bad
    = None)

(* ---------- Pruning actually prunes ---------- *)

let test_pruning_reduces_positions () =
  let solve orbit a b rounds =
    snd
      (Ef.solve
         ~config:{ Ef.memo = true; parallel = false; workers = None; orbit }
         ~rounds a b)
  in
  (* Cycles: root branching collapses from 2n moves to 2 orbits. *)
  let a = Gen.cycle 10 and b = Gen.cycle 11 in
  let pruned = solve true a b 3 and plain = solve false a b 3 in
  checkb "cycles: orbit pruning explores strictly fewer positions" true
    (pruned.Ef.positions < plain.Ef.positions);
  (* Rigid structures: identical exploration, pruning is a no-op. *)
  let a = Gen.linear_order 6 and b = Gen.linear_order 7 in
  let pruned = solve true a b 3 and plain = solve false a b 3 in
  checki "rigid: identical position count" plain.Ef.positions
    pruned.Ef.positions

let () =
  Alcotest.run "fmtk_orbit"
    [
      ( "orbits",
        [
          Alcotest.test_case "known families" `Quick test_known_families;
          Alcotest.test_case "stabilizers" `Quick test_stabilizers;
          Alcotest.test_case "automorphism witnesses" `Quick
            test_orbits_are_automorphic;
          Alcotest.test_case "refine WL colours" `Quick test_orbits_refine_wl;
          Alcotest.test_case "stabilizer refines root" `Quick
            test_stabilizer_refines_root;
        ] );
      ( "differential",
        [
          Alcotest.test_case "EF orbit on/off (240 pairs + parallel slice)"
            `Slow test_ef_differential;
          Alcotest.test_case "pebble orbit on/off (60 pairs)" `Slow
            test_pebble_differential;
          Alcotest.test_case "strategy verify symmetry" `Quick
            test_strategy_verify_symmetry;
          Alcotest.test_case "pruning reduces positions" `Quick
            test_pruning_reduces_positions;
        ] );
    ]
