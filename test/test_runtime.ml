(* Resource-governance tests: budget primitives, fault injection,
   differential no-wrong-verdict checks, cross-domain cancellation,
   worker-death hygiene in the parallel EF search, graceful degradation,
   and totality of the two text parsers on a malformed-input corpus.

   Set FMTK_INJECT=1 (as CI does) to scale up the randomized sweeps;
   default counts keep a plain `dune runtest` fast. *)

module Budget = Fmtk_runtime.Budget
module Structure = Fmtk_structure.Structure
module Gen = Fmtk_structure.Gen
module Iso = Fmtk_structure.Iso
module Structure_io = Fmtk_structure.Structure_io
module Parser = Fmtk_logic.Parser
module Ef = Fmtk_games.Ef
module Pebble = Fmtk_games.Pebble
module Strategy = Fmtk_games.Strategy
module Distinguish = Fmtk_games.Distinguish
module Decide = Fmtk.Decide
module Classify = Fmtk.Classify
module Engine = Fmtk_datalog.Engine
module Programs = Fmtk_datalog.Programs
module So_eval = Fmtk_so.So_eval
module So_queries = Fmtk_so.So_queries
module Qbf = Fmtk_qbf.Qbf
module Fp_eval = Fmtk_fixpoint.Fp_eval
module Fp_formula = Fmtk_fixpoint.Fp_formula

let checkb msg = Alcotest.check Alcotest.bool msg

let inject_scale = if Sys.getenv_opt "FMTK_INJECT" = Some "1" then 4 else 1

(* ---------- budget primitives ---------- *)

let test_budget_primitives () =
  let u = Budget.unlimited in
  checkb "unlimited flag" true (Budget.is_unlimited u);
  let p = Budget.poller u in
  for _ = 1 to 100_000 do
    Budget.check p
  done;
  checkb "unlimited never exhausts" true (Budget.exhausted u = None);

  (* Fuel: raises within one poll interval of the nominal limit. *)
  let b = Budget.create ~fuel:100 ~poll_interval:10 () in
  let p = Budget.poller b in
  let n = ref 0 in
  (try
     while !n < 1_000 do
       Budget.check p;
       incr n
     done;
     Alcotest.fail "fuel never ran out"
   with Budget.Exhausted Budget.Fuel -> ());
  checkb "fuel stops near the limit" true (!n >= 90 && !n <= 110);
  checkb "exhausted reports fuel" true (Budget.exhausted b = Some Budget.Fuel);

  (* Deadline in the past: first poll raises. *)
  let b = Budget.create ~deadline_in:(-1.0) ~poll_interval:1 () in
  let p = Budget.poller b in
  (match Budget.check p with
  | () -> Alcotest.fail "expired deadline not noticed"
  | exception Budget.Exhausted Budget.Deadline -> ());

  (* Cancellation token, shared and via the convenience setter. *)
  let tok = Budget.Cancel.create () in
  let b = Budget.create ~cancel:tok ~poll_interval:1 () in
  Budget.Cancel.set tok;
  (match Budget.check (Budget.poller b) with
  | () -> Alcotest.fail "cancel not noticed"
  | exception Budget.Exhausted Budget.Cancelled -> ());
  let b = Budget.create ~fuel:1_000_000 ~poll_interval:1 () in
  Budget.cancel b;
  checkb "exhausted reports cancelled" true
    (Budget.exhausted b = Some Budget.Cancelled);

  (* Memo cap. *)
  let b = Budget.create ~memo_cap:10 () in
  checkb "under cap" true (Budget.memo_ok b ~entries:10);
  checkb "over cap" false (Budget.memo_ok b ~entries:11);
  (match Budget.check_memo b ~entries:11 with
  | () -> Alcotest.fail "memo cap not enforced"
  | exception Budget.Exhausted Budget.Memory -> ());

  (* guard converts exhaustion to a result. *)
  let b = Budget.create ~fuel:5 ~poll_interval:1 () in
  let p = Budget.poller b in
  (match
     Budget.guard b (fun () ->
         while true do
           Budget.check p
         done)
   with
  | Ok () -> Alcotest.fail "guard returned Ok on divergence"
  | Error r -> checkb "guard reason" true (r = Budget.Fuel));
  checkb "guard passes values through" true
    (Budget.guard Budget.unlimited (fun () -> 41 + 1) = Ok 42)

(* ---------- derived budgets ---------- *)

let test_budget_sub () =
  (* A child can only narrow: its deadline is clamped by the parent's. *)
  let parent = Budget.create ~deadline_in:(-1.0) () in
  let child = Budget.sub parent ~deadline_in:1000.0 ~poll_interval:1 in
  (match Budget.check (Budget.poller child) with
  | () -> Alcotest.fail "child outlived an expired parent deadline"
  | exception Budget.Exhausted Budget.Deadline -> ());

  (* Requesting more fuel than the parent holds is capped at the
     parent's remaining pool. *)
  let parent = Budget.create ~fuel:100 () in
  let child = Budget.sub parent ~fuel:1_000_000 ~poll_interval:1 in
  let n = ref 0 in
  let p = Budget.poller child in
  (try
     while !n < 10_000 do
       Budget.check p;
       incr n
     done;
     Alcotest.fail "capped child fuel never ran out"
   with Budget.Exhausted Budget.Fuel -> ());
  checkb "child fuel capped by parent" true (!n <= 110);

  (* A child without its own fuel draws from the parent's shared pool:
     burning the child starves the parent. *)
  let parent = Budget.create ~fuel:100 ~poll_interval:1 () in
  let child = Budget.sub parent ~poll_interval:1 in
  let p = Budget.poller child in
  (try
     for _ = 1 to 10_000 do
       Budget.check p
     done;
     Alcotest.fail "shared pool never ran out"
   with Budget.Exhausted Budget.Fuel -> ());
  (match Budget.check (Budget.poller parent) with
  | () -> Alcotest.fail "parent blind to the drained shared pool"
  | exception Budget.Exhausted Budget.Fuel -> ());

  (* The cancellation token is shared both ways. *)
  let tok = Budget.Cancel.create () in
  let parent = Budget.create ~cancel:tok () in
  let child = Budget.sub parent ~deadline_in:60.0 ~poll_interval:1 in
  Budget.cancel parent;
  (match Budget.check (Budget.poller child) with
  | () -> Alcotest.fail "child missed the parent's cancellation"
  | exception Budget.Exhausted Budget.Cancelled -> ());
  checkb "token view agrees" true (Budget.Cancel.is_set tok);

  (* Unlimited propagates only when the child adds no limit of its own;
     any limit makes the child a real budget. *)
  checkb "sub of unlimited stays unlimited" true
    (Budget.is_unlimited (Budget.sub Budget.unlimited));
  checkb "sub with fuel is limited" false
    (Budget.is_unlimited (Budget.sub Budget.unlimited ~fuel:5))

(* ---------- differential: budgets never change answers ---------- *)

let game_pairs =
  [
    ("sets 3/4 r3", Gen.set 3, Gen.set 4, 3);
    ("sets 6/7 r3", Gen.set 6, Gen.set 7, 3);
    ("orders 5/6 r2", Gen.linear_order 5, Gen.linear_order 6, 2);
    ("orders 3/4 r2", Gen.linear_order 3, Gen.linear_order 4, 2);
    ("cycles 5/6 r2", Gen.cycle 5, Gen.cycle 6, 2);
    ("chains 4/5 r2", Gen.successor 4, Gen.successor 5, 2);
    ("complete 3/4 r2", Gen.complete 3, Gen.complete 4, 2);
    ("cycle/chain 5 r2", Gen.cycle 5, Gen.successor 5, 2);
  ]

let random_game_pairs =
  let rng = Random.State.make [| 2025 |] in
  List.init (4 * inject_scale) (fun i ->
      let n = 4 + Random.State.int rng 3 in
      let a = Gen.random_graph ~rng n 0.3 in
      let b = Gen.random_graph ~rng n 0.5 in
      (Printf.sprintf "random pair %d" i, a, b, 2))

let fuels = [ 1; 2; 5; 17; 100; 1_000; 20_000 ]

let test_no_wrong_verdicts () =
  List.iter
    (fun (name, a, b, rounds) ->
      let baseline, _ = Ef.solve_verdict ~rounds a b in
      checkb (name ^ " baseline decided") true (baseline <> Ef.Gave_up Budget.Fuel);
      List.iter
        (fun fuel ->
          let budget = Budget.create ~fuel ~poll_interval:1 () in
          match fst (Ef.solve_verdict ~budget ~rounds a b) with
          | Ef.Gave_up _ -> ()
          | v ->
              checkb
                (Printf.sprintf "%s fuel=%d agrees with baseline" name fuel)
                true (v = baseline))
        fuels)
    (game_pairs @ random_game_pairs)

let test_doubled_budget_never_flips () =
  (* Once decisive, the verdict is the baseline verdict — growing a
     too-small budget can only move Gave_up -> correct, never flip
     Equivalent <-> Distinguished. *)
  List.iter
    (fun (name, a, b, rounds) ->
      let baseline, _ = Ef.solve_verdict ~rounds a b in
      let fuel = ref 1 in
      let decided = ref false in
      while (not !decided) && !fuel < 1 lsl 22 do
        let budget = Budget.create ~fuel:!fuel ~poll_interval:1 () in
        (match fst (Ef.solve_verdict ~budget ~rounds a b) with
        | Ef.Gave_up _ -> ()
        | v ->
            decided := true;
            checkb (name ^ " first decisive verdict is baseline") true
              (v = baseline));
        fuel := !fuel * 2
      done;
      checkb (name ^ " eventually decisive") true !decided)
    game_pairs

let test_unlimited_equals_baseline () =
  List.iter
    (fun (name, a, b, rounds) ->
      let baseline = Ef.duplicator_wins ~rounds a b in
      checkb (name ^ " unlimited = baseline") true
        (Ef.duplicator_wins ~budget:Budget.unlimited ~rounds a b = baseline))
    (game_pairs @ random_game_pairs)

(* ---------- fault injection ---------- *)

let test_exhaust_at_injection () =
  let a = Gen.linear_order 7 and b = Gen.linear_order 8 in
  for k = 1 to 10 * inject_scale do
    let budget = Budget.create ~inject:(Budget.Exhaust_at k) () in
    match fst (Ef.solve_verdict ~budget ~rounds:3 a b) with
    | Ef.Gave_up Budget.Fuel -> ()
    | Ef.Gave_up _ -> Alcotest.fail "wrong gave-up reason"
    | _ -> Alcotest.failf "Exhaust_at %d produced a verdict" k
  done;
  (* The solver stays usable after an injected failure. *)
  checkb "solver usable after injection" true
    (Ef.duplicator_wins ~rounds:3 a b
    = Ef.duplicator_wins ~rounds:3 (Gen.linear_order 7) (Gen.linear_order 8))

let test_cancel_at_injection () =
  let a = Gen.cycle 6 and b = Gen.cycle 7 in
  for k = 1 to 10 * inject_scale do
    let budget = Budget.create ~inject:(Budget.Cancel_at k) () in
    match fst (Ef.solve_verdict ~budget ~rounds:3 a b) with
    | Ef.Gave_up Budget.Cancelled -> ()
    | Ef.Gave_up _ -> Alcotest.fail "wrong gave-up reason"
    | _ -> Alcotest.failf "Cancel_at %d produced a verdict" k
  done

let par_config = { Ef.default_config with parallel = true; workers = Some 4 }

let test_raise_in_worker () =
  (* A worker domain dies with an unrelated exception: the coordinator
     must join every domain and re-raise — no leaked domains, no memo
     poisoning, and the next (clean) solve still answers correctly. *)
  let a = Gen.linear_order 8 and b = Gen.linear_order 8 in
  let expected = Ef.duplicator_wins ~config:par_config ~rounds:3 a b in
  for _ = 1 to 3 * inject_scale do
    let budget =
      Budget.create ~inject:Budget.Raise_in_worker ~poll_interval:1 ()
    in
    (match Ef.solve_verdict ~config:par_config ~budget ~rounds:3 a b with
    | exception Budget.Injected_fault -> ()
    | Ef.Gave_up _, _ ->
        (* Allowed: the injected fault can race with a worker finishing
           the whole search, but the injection poller fires on the 2nd
           poll, so on this workload the fault always wins. *)
        Alcotest.fail "injected fault surfaced as Gave_up"
    | _ -> Alcotest.fail "worker fault swallowed");
    (* Clean rerun, same process: correct answer, fresh memo. *)
    checkb "verdict correct after worker death" true
      (Ef.duplicator_wins ~config:par_config ~rounds:3 a b = expected)
  done

let test_cross_domain_cancellation () =
  (* A search that would run for hours is cancelled from another domain
     and must come back promptly (the poll interval is a few thousand
     hot-path steps, i.e. well under a second). *)
  let a = Gen.linear_order 30 and b = Gen.linear_order 31 in
  let tok = Budget.Cancel.create () in
  let budget = Budget.create ~cancel:tok ~poll_interval:64 () in
  let canceller =
    Domain.spawn (fun () ->
        Unix.sleepf 0.05;
        Budget.Cancel.set tok)
  in
  let t0 = Unix.gettimeofday () in
  let verdict, _ = Ef.solve_verdict ~budget ~rounds:8 a b in
  let elapsed = Unix.gettimeofday () -. t0 in
  Domain.join canceller;
  checkb "cancelled verdict" true (verdict = Ef.Gave_up Budget.Cancelled);
  checkb
    (Printf.sprintf "cancellation is prompt (%.2fs)" elapsed)
    true (elapsed < 10.0)

(* ---------- every engine honours its budget ---------- *)

let expect_exhausted name f =
  match f () with
  | _ -> Alcotest.failf "%s ignored a tiny budget" name
  | exception Budget.Exhausted _ -> ()

let test_engines_honour_budgets () =
  let tiny () = Budget.create ~fuel:3 ~poll_interval:1 () in
  expect_exhausted "Ef.solve" (fun () ->
      Ef.solve ~budget:(tiny ()) ~rounds:3 (Gen.cycle 5) (Gen.cycle 6));
  expect_exhausted "Pebble.duplicator_wins" (fun () ->
      Pebble.duplicator_wins ~budget:(tiny ()) ~pebbles:2 ~rounds:3
        (Gen.cycle 5) (Gen.cycle 6));
  expect_exhausted "Strategy.verify" (fun () ->
      Strategy.verify ~budget:(tiny ()) ~rounds:2 (Gen.linear_order 5)
        (Gen.linear_order 6)
        (Strategy.linear_orders 5 6));
  expect_exhausted "Distinguish.sentence" (fun () ->
      Distinguish.sentence ~budget:(tiny ()) ~rounds:2 (Gen.linear_order 2)
        (Gen.linear_order 3));
  expect_exhausted "Iso.find_iso" (fun () ->
      Iso.find_iso ~budget:(tiny ()) (Gen.cycle 7) (Gen.cycle 7));
  expect_exhausted "So_eval.sat" (fun () ->
      So_eval.sat ~budget:(tiny ()) (Gen.cycle 5) So_queries.connectivity);
  expect_exhausted "Qbf.solve" (fun () ->
      Qbf.solve ~budget:(tiny ()) (Qbf.pigeonhole_valid 2));
  expect_exhausted "Fp_eval.sat" (fun () ->
      Fp_eval.sat ~budget:(tiny ()) (Gen.successor 5) Fp_formula.connectivity);
  expect_exhausted "Engine.seminaive" (fun () ->
      Engine.seminaive ~budget:(tiny ()) Programs.transitive_closure
        (Engine.Db.of_structure (Gen.successor 6)));
  expect_exhausted "Engine.naive" (fun () ->
      Engine.naive ~budget:(tiny ()) Programs.transitive_closure
        (Engine.Db.of_structure (Gen.successor 6)));
  (* And with no limits they all agree with the unbudgeted entry points. *)
  let u = Budget.unlimited in
  checkb "pebble unlimited" true
    (Pebble.duplicator_wins ~budget:u ~pebbles:2 ~rounds:3 (Gen.cycle 5)
       (Gen.cycle 6)
    = Pebble.duplicator_wins ~pebbles:2 ~rounds:3 (Gen.cycle 5) (Gen.cycle 6));
  checkb "qbf unlimited" true
    (Qbf.solve ~budget:u (Qbf.pigeonhole_valid 2)
    = Qbf.solve (Qbf.pigeonhole_valid 2));
  checkb "so unlimited" true
    (So_eval.sat ~budget:u (Gen.cycle 5) So_queries.connectivity
    = So_eval.sat (Gen.cycle 5) So_queries.connectivity);
  checkb "fp unlimited" true
    (Fp_eval.sat ~budget:u (Gen.cycle 5) Fp_formula.connectivity
    = Fp_eval.sat (Gen.cycle 5) Fp_formula.connectivity)

(* ---------- graceful degradation ladder ---------- *)

let test_decide_ladder_sound () =
  (* Budgeted Decide may degrade, but an exact-flavoured verdict must
     match the unlimited baseline: Equivalent / Distinguished are claims
     about the requested rank and cannot be wrong. *)
  List.iter
    (fun (name, a, b, rounds) ->
      let baseline =
        match (Decide.equiv ~rank:rounds a b).Decide.verdict with
        | Decide.Equivalent -> `Equiv
        | Decide.Distinguished _ -> `Dist
        | _ -> Alcotest.fail "unlimited Decide must be exact"
      in
      List.iter
        (fun fuel ->
          let budget = Budget.create ~fuel ~poll_interval:1 () in
          let o = Decide.equiv ~budget ~rank:rounds a b in
          match o.Decide.verdict with
          | Decide.Equivalent ->
              checkb (name ^ " budgeted Equivalent is true") true
                (baseline = `Equiv)
          | Decide.Distinguished _ ->
              checkb (name ^ " budgeted Distinguished is true") true
                (baseline = `Dist)
          | Decide.Distinguishable ->
              (* Sound iff the structures are non-isomorphic. *)
              checkb (name ^ " Distinguishable implies non-isomorphic") false
                (Iso.isomorphic a b)
          | Decide.Gave_up _ ->
              checkb (name ^ " gave up without an answerer") true
                (o.Decide.answered_by = None))
        fuels)
    (game_pairs @ random_game_pairs)

let test_decide_reports_method () =
  (* Exact path. *)
  let o = Decide.equiv ~rank:2 (Gen.linear_order 5) (Gen.linear_order 6) in
  checkb "exact path method" true (o.Decide.answered_by = Some Decide.Exact_game);
  (* Degree-sequence certificate under a starved budget. *)
  let budget = Budget.create ~fuel:1 ~poll_interval:1 () in
  let o = Decide.equiv ~budget ~rank:4 (Gen.cycle 9) (Gen.complete 9) in
  checkb "degraded verdict is a certificate" true
    (o.Decide.verdict = Decide.Distinguishable);
  checkb "certificate names its method" true
    (match o.Decide.answered_by with
    | Some
        ( Decide.Kwl_refinement | Decide.Degree_sequence
        | Decide.Wl_refinement | Decide.Hanf_locality ) ->
        true
    | _ -> false);
  (* Identical structures under a starved budget: no certificate can
     separate them, and none may falsely claim Equivalent. *)
  let budget = Budget.create ~fuel:1 ~poll_interval:1 () in
  let o = Decide.equiv ~budget ~rank:5 (Gen.linear_order 20) (Gen.linear_order 20) in
  (match o.Decide.verdict with
  | Decide.Gave_up _ | Decide.Equivalent -> ()
  | _ -> Alcotest.fail "identical structures separated");
  (* The 2-WL rung catches cycle-cover pairs the older certificates were
     blind to: one 12-cycle vs two 6-cycles match on degrees and 1-WL
     censuses, but C^3 counts paths and separates them. *)
  let budget = Budget.create ~fuel:1 ~poll_interval:1 () in
  let o =
    Decide.equiv ~budget ~rank:3 (Gen.cycle 12)
      (Gen.union_of [ Gen.cycle 6; Gen.cycle 6 ])
  in
  checkb "2-WL rung separates cycle covers" true
    (o.Decide.verdict = Decide.Distinguishable
    && o.Decide.answered_by = Some Decide.Kwl_refinement);
  (* Hanf locality certifies Equivalent at the sound radius: one big
     cycle vs two half-cycles have identical radius-1 censuses (every
     vertex sees a 3-path), so rank-1 equivalence follows even though
     the budget is too small for the game search. Sized past the 2-WL
     rung's guard, which would otherwise answer Distinguishable first —
     on structures this size only the cheap rungs run. *)
  let budget = Budget.create ~fuel:1 ~poll_interval:1 () in
  let o =
    Decide.equiv ~budget ~rank:1 (Gen.cycle 120)
      (Gen.union_of [ Gen.cycle 60; Gen.cycle 60 ])
  in
  checkb "hanf certifies equivalence at rank 1" true
    (o.Decide.verdict = Decide.Equivalent
    && o.Decide.answered_by = Some Decide.Hanf_locality)

let test_ladder_rungs_under_injection () =
  (* Force [Gave_up] out of the exact game with an injected fault and
     check that each certificate rung below it answers — with the method
     it names — and that every answer is sound. [Exhaust_at 1] kills the
     game search on its first poll, before any position is explored, so
     whichever rung answers is doing so on its own. *)
  let inject = Budget.Exhaust_at 1 in
  let decide ~rank a b =
    Decide.equiv ~budget:(Budget.create ~inject ()) ~rank a b
  in
  (* A path of [n] vertices with one extra leaf hanging off vertex
     [attach]: same degree multiset for any interior attach point, but
     1-WL tells the shapes apart. *)
  let caterpillar n attach =
    let spine = List.init (n - 1) (fun i -> [| i; i + 1 |]) in
    Fmtk_structure.Structure.make Fmtk_logic.Signature.graph ~size:(n + 1)
      [ ("E", [| attach; n |] :: spine) ]
  in

  (* Rung 1 — 2-WL (C^3) census, sizes <= 96: one 12-cycle vs two
     6-cycles agree on degrees and 1-WL but differ in C^3. *)
  let o = decide ~rank:3 (Gen.cycle 12) (Gen.union_of [ Gen.cycle 6; Gen.cycle 6 ]) in
  checkb "kwl rung verdict" true (o.Decide.verdict = Decide.Distinguishable);
  checkb "kwl rung method" true (o.Decide.answered_by = Some Decide.Kwl_refinement);

  (* Rung 2 — degree sequence, past the 2-WL size guard: a 100-cycle is
     2-regular, a 100-path has two endpoints. *)
  let o = decide ~rank:3 (Gen.cycle 100) (Gen.path 100) in
  checkb "degree rung verdict" true (o.Decide.verdict = Decide.Distinguishable);
  checkb "degree rung method" true
    (o.Decide.answered_by = Some Decide.Degree_sequence);

  (* Rung 3 — 1-WL census: caterpillars with the leaf near the end vs in
     the middle share the degree multiset but refine apart. *)
  let o = decide ~rank:3 (caterpillar 100 2) (caterpillar 100 50) in
  checkb "wl rung verdict" true (o.Decide.verdict = Decide.Distinguishable);
  checkb "wl rung method" true (o.Decide.answered_by = Some Decide.Wl_refinement);

  (* Rung 4 — Hanf locality, both directions. Equivalent: every vertex
     of one 120-cycle and of two 60-cycles sees the same radius-4 ball
     (a 9-path), so rank-2 equivalence follows by Hanf's theorem.
     Distinguishable: a 103-cycle vs a 100-cycle plus a triangle — the
     triangle's radius-1 ball (3 vertices, 3 edges) appears nowhere in
     the big cycle. Both pairs are 2-regular and size-matched, so every
     earlier rung passes through. *)
  let o = decide ~rank:2 (Gen.cycle 120) (Gen.union_of [ Gen.cycle 60; Gen.cycle 60 ]) in
  checkb "hanf equivalent verdict" true (o.Decide.verdict = Decide.Equivalent);
  checkb "hanf equivalent method" true
    (o.Decide.answered_by = Some Decide.Hanf_locality);
  let o = decide ~rank:1 (Gen.cycle 103) (Gen.union_of [ Gen.cycle 100; Gen.cycle 3 ]) in
  checkb "hanf distinguishable verdict" true
    (o.Decide.verdict = Decide.Distinguishable);
  checkb "hanf distinguishable method" true
    (o.Decide.answered_by = Some Decide.Hanf_locality);

  (* Past every rung — identical large structures at a rank whose Hanf
     radius is out of range: an honest Gave_up with no claimed method. *)
  let o = decide ~rank:3 (Gen.cycle 100) (Gen.cycle 100) in
  (match o.Decide.verdict with
  | Decide.Gave_up _ -> checkb "gave-up names no method" true (o.Decide.answered_by = None)
  | _ -> Alcotest.fail "rungless pair did not give up");

  (* Soundness spot-check: the injected Distinguishable certificates all
     name non-isomorphic pairs. *)
  checkb "kwl certificate sound" false
    (Iso.isomorphic (Gen.cycle 12) (Gen.union_of [ Gen.cycle 6; Gen.cycle 6 ]));
  checkb "wl certificate sound" false
    (Iso.isomorphic (caterpillar 100 2) (caterpillar 100 50))

let test_classify_degrades () =
  let ts =
    [ Gen.set 4; Gen.set 5; Gen.complete 4; Gen.cycle 4; Gen.cycle 5 ]
  in
  let exact = Classify.by_rank ~rank:2 ts in
  let p = Classify.by_rank_budgeted ~rank:2 ts in
  checkb "unlimited partition is exact" true p.Classify.exact;
  checkb "unlimited partition agrees" true (p.Classify.classes = exact);
  let budget = Budget.create ~fuel:2 ~poll_interval:1 () in
  let p = Classify.by_rank_budgeted ~budget ~rank:2 ts in
  checkb "starved partition is approximate" false p.Classify.exact;
  checkb "starved partition reports reason" true (p.Classify.gave_up <> None);
  checkb "partition covers all structures" true
    (Array.length p.Classify.classes = List.length ts)

(* ---------- parser totality: malformed-input corpus ---------- *)

let malformed_formulas =
  [
    "";
    "(";
    ")";
    "()";
    "((x = y)";
    "x = y)";
    "forall";
    "forall .";
    "forall x";
    "forall x x";
    "exists x.";
    "exists . x = x";
    "x";
    "x =";
    "= x";
    "x == y";
    "E(";
    "E(x";
    "E(x,";
    "E(x,y";
    "E(x y)";
    "E(,)";
    "E()";
    "x <";
    "< x";
    "!";
    "!!";
    "~";
    "&";
    "x = y &";
    "| x = y";
    "x = y | |";
    "->";
    "x = y ->";
    "-";
    "x - y";
    "<->";
    "x = y <-> ";
    "'";
    "''";
    "'a";
    "' = x";
    "x = 'a'";
    "@";
    "#foo";
    "\xff\xfe";
    "x = y extra";
    "forall x. ";
    "true true";
    "E(x,y) E(y,x)";
    "exists x y";
  ]

let valid_formula_text = "forall x. exists y. (E(x,y) & !(x = y)) -> x < y"

let random_garbage rng n =
  List.init n (fun _ ->
      String.init
        (1 + Random.State.int rng 30)
        (fun _ -> Char.chr (Random.State.int rng 256)))

let test_parser_corpus () =
  let rng = Random.State.make [| 7 |] in
  let total = ref 0 in
  let run_total s =
    incr total;
    match Parser.parse s with Ok _ | Error _ -> ()
  in
  (* Known-malformed inputs: Error, with a 1-based position in it. *)
  List.iter
    (fun s ->
      incr total;
      match Parser.parse s with
      | Ok _ -> Alcotest.failf "parsed malformed %S" s
      | Error msg ->
          checkb
            (Printf.sprintf "%S error is positioned: %s" s msg)
            true
            (String.length msg > 0
            && (let has sub =
                  let n = String.length msg and m = String.length sub in
                  let rec go i =
                    i + m <= n && (String.sub msg i m = sub || go (i + 1))
                  in
                  go 0
                in
                has "line"))
    )
    malformed_formulas;
  (* Every prefix of a valid formula: total, no exceptions. *)
  for i = 0 to String.length valid_formula_text - 1 do
    run_total (String.sub valid_formula_text 0 i)
  done;
  (* Random garbage, including non-ASCII bytes: total. *)
  List.iter run_total (random_garbage rng (100 * inject_scale));
  (* Pathological nesting: bounded recursion, clean error. *)
  let deep n = String.make n '(' ^ "x = x" ^ String.make n ')' in
  (match Parser.parse (deep 3_000) with
  | Ok _ -> Alcotest.fail "over-deep nesting accepted"
  | Error msg -> checkb "depth error mentions nesting" true
      (String.length msg > 0));
  incr total;
  checkb "moderate nesting still parses" true
    (match Parser.parse (deep 50) with Ok _ -> true | Error _ -> false);
  incr total;
  checkb "corpus has at least 200 cases" true (!total >= 200)

let malformed_structures =
  [
    "";
    "domain";
    "domain x";
    "domain -1";
    "domain 99999999999999999999999999";
    "domain 3\ndomain x";
    "rel E/2 = (0,1)";
    "domain 3\nrel";
    "domain 3\nrel E = (0,1)";
    "domain 3\nrel E/x = (0,1)";
    "domain 3\nrel E/-1 = (0,1)";
    "domain 3\nrel E/2 = 0,1";
    "domain 3\nrel E/2 = (0,1,2)";
    "domain 3\nrel E/2 = (a,b)";
    "domain 3\nrel E/2 = (0,1) (0)";
    "domain 3\nrel E/2 = ()";
    "domain 2\nrel E/1 = (5)";
    "domain 3\nconst";
    "domain 3\nconst a";
    "domain 3\nconst a =";
    "domain 3\nconst a = x";
    "domain 3\nconst a = 99";
    "domain 3\njunk here";
    "foo bar";
    "domain 3\nrel E/2 = (0,1)\nwat";
  ]

let test_structure_io_corpus () =
  let rng = Random.State.make [| 11 |] in
  let total = ref 0 in
  let run_total s =
    incr total;
    match Structure_io.parse s with Ok _ | Error _ -> ()
  in
  List.iter
    (fun s ->
      incr total;
      match Structure_io.parse s with
      | Ok _ -> Alcotest.failf "parsed malformed structure %S" s
      | Error msg -> checkb "structure error nonempty" true (String.length msg > 0))
    malformed_structures;
  (* Line numbers on per-line failures. *)
  (match Structure_io.parse "domain 3\nrel E/2 = (0,1)\nwat" with
  | Error msg ->
      checkb ("line number in: " ^ msg) true
        (let n = String.length msg in
         let rec go i =
           i + 6 <= n && (String.sub msg i 6 = "line 3" || go (i + 1))
         in
         go 0)
  | Ok _ -> Alcotest.fail "junk line accepted");
  (* Truncations of a valid document: total. *)
  let valid =
    Structure_io.to_string (Gen.cycle 5)
    ^ "# comment\nconst c = 0\n"
  in
  (match Structure_io.parse valid with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "valid doc rejected: %s" e);
  for i = 0 to String.length valid - 1 do
    run_total (String.sub valid 0 i)
  done;
  List.iter run_total (random_garbage rng (60 * inject_scale));
  (* Round-trip still works after the hardening. *)
  let s = Gen.grid 3 4 in
  (match Structure_io.parse (Structure_io.to_string s) with
  | Ok s' -> checkb "round-trip size" true (Structure.size s' = Structure.size s)
  | Error e -> Alcotest.failf "round-trip failed: %s" e);
  checkb "structure corpus is substantial" true (!total >= 80)

(* ---------- the shared domain pool and the work-stealing deque ---------- *)

module Pool = Fmtk_runtime.Pool
module Deque = Fmtk_runtime.Deque

let test_pool_spawn_join () =
  let pool = Pool.create () in
  let n = 8 in
  let results = Array.make n 0 in
  let handles =
    Array.init n (fun i -> Pool.spawn pool (fun () -> results.(i) <- i * i))
  in
  Array.iter Pool.join handles;
  checkb "all jobs ran" true
    (Array.to_list results = List.init n (fun i -> i * i));
  (* Escaped exceptions surface at the join, not anywhere else. *)
  let h = Pool.spawn pool (fun () -> failwith "boom") in
  (match Pool.join h with
  | exception Failure m -> checkb "exception carried" true (m = "boom")
  | () -> Alcotest.fail "exception swallowed by join");
  (* The pool survives a failed job. *)
  let h = Pool.spawn pool (fun () -> ()) in
  Pool.join h;
  Pool.shutdown pool

let test_pool_reuse () =
  let pool = Pool.create () in
  (* Sequential spawn/join cycles must park and reuse one domain, not
     create one per job — this is the pool's entire reason to exist. *)
  for _ = 1 to 20 do
    Pool.join (Pool.spawn pool (fun () -> ()))
  done;
  checkb "20 jobs dispatched" true (Pool.dispatched pool = 20);
  checkb "domains reused, not respawned" true (Pool.spawned_total pool <= 2);
  (* [join] returns when the job finishes; the domain parks a moment
     later, so give it a few naps before asserting. *)
  let rec await_park n =
    Pool.parked_count pool >= 1 || (n > 0 && (Pool.nap (); await_park (n - 1)))
  in
  checkb "idle domains parked" true (await_park 100);
  Pool.shutdown pool;
  checkb "shutdown empties the park" true (Pool.parked_count pool = 0);
  (match Pool.spawn pool (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "spawn on a shut pool must raise")

let test_pool_shutdown_with_busy_job () =
  (* A domain busy when [shutdown] runs finishes its job and its handle
     stays joinable — shutdown never strands or kills work. *)
  let pool = Pool.create () in
  let gate = Atomic.make false in
  let done_ = Atomic.make false in
  let h =
    Pool.spawn pool (fun () ->
        while not (Atomic.get gate) do
          Pool.nap ()
        done;
        Atomic.set done_ true)
  in
  Pool.shutdown pool;
  Atomic.set gate true;
  Pool.join h;
  checkb "busy job completed across shutdown" true (Atomic.get done_)

let test_deque_owner_order () =
  let q = Deque.create ~capacity:8 () in
  for i = 1 to 8 do
    checkb "push fits" true (Deque.push q i)
  done;
  checkb "full deque rejects" false (Deque.push q 9);
  (* Owner pops LIFO (the deep, hot end)... *)
  checkb "pop is LIFO" true (Deque.pop q = Some 8);
  (* ...thieves steal FIFO (the shallow, big-subtree end). *)
  checkb "steal is FIFO" true (Deque.steal q = Some 1);
  checkb "steal advances" true (Deque.steal q = Some 2);
  checkb "size tracks" true (Deque.size q = 5);
  for _ = 1 to 5 do
    ignore (Deque.pop q)
  done;
  checkb "empty pop" true (Deque.pop q = None);
  checkb "empty steal" true (Deque.steal q = None)

let test_deque_steal_stress () =
  (* Owner pops while thieves steal: every pushed element is consumed
     exactly once — the Chase–Lev top CAS arbitrates the last-element
     race. Sums, not sets, so lost and duplicated elements both show. *)
  let n = 2000 and thieves = 3 in
  let q = Deque.create ~capacity:4096 () in
  let stolen = Array.make thieves 0 in
  let live = Atomic.make true in
  let doms =
    Array.init thieves (fun i ->
        Domain.spawn (fun () ->
            while Atomic.get live do
              match Deque.steal q with
              | Some v -> stolen.(i) <- stolen.(i) + v
              | None -> Domain.cpu_relax ()
            done))
  in
  let popped = ref 0 in
  for v = 1 to n do
    if Deque.push q v then begin
      (* Pop roughly half from the owner end, racing the thieves. *)
      if v land 1 = 0 then
        match Deque.pop q with
        | Some x -> popped := !popped + x
        | None -> ()
    end
    else popped := !popped + v (* full: consume inline, like the engine *)
  done;
  let rec drain () =
    match Deque.pop q with
    | Some x ->
        popped := !popped + x;
        drain ()
    | None -> if Deque.size q > 0 then drain ()
  in
  drain ();
  Atomic.set live false;
  Array.iter Domain.join doms;
  let total = Array.fold_left ( + ) !popped stolen in
  checkb "every element consumed exactly once" true
    (total = n * (n + 1) / 2)

let () =
  Alcotest.run "fmtk_runtime"
    [
      ( "budget",
        [
          Alcotest.test_case "primitives" `Quick test_budget_primitives;
          Alcotest.test_case "sub-budgets" `Quick test_budget_sub;
          Alcotest.test_case "engines honour budgets" `Quick
            test_engines_honour_budgets;
        ] );
      ( "differential",
        [
          Alcotest.test_case "no wrong verdicts" `Slow test_no_wrong_verdicts;
          Alcotest.test_case "doubling never flips" `Slow
            test_doubled_budget_never_flips;
          Alcotest.test_case "unlimited = baseline" `Quick
            test_unlimited_equals_baseline;
        ] );
      ( "injection",
        [
          Alcotest.test_case "exhaust_at" `Quick test_exhaust_at_injection;
          Alcotest.test_case "cancel_at" `Quick test_cancel_at_injection;
          Alcotest.test_case "raise in worker" `Quick test_raise_in_worker;
          Alcotest.test_case "cross-domain cancel" `Slow
            test_cross_domain_cancellation;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "decide ladder sound" `Slow test_decide_ladder_sound;
          Alcotest.test_case "decide reports method" `Quick
            test_decide_reports_method;
          Alcotest.test_case "ladder rungs under injection" `Quick
            test_ladder_rungs_under_injection;
          Alcotest.test_case "classify degrades" `Quick test_classify_degrades;
        ] );
      ( "pool",
        [
          Alcotest.test_case "spawn/join" `Quick test_pool_spawn_join;
          Alcotest.test_case "reuse" `Quick test_pool_reuse;
          Alcotest.test_case "shutdown with busy job" `Quick
            test_pool_shutdown_with_busy_job;
          Alcotest.test_case "deque owner order" `Quick test_deque_owner_order;
          Alcotest.test_case "deque steal stress" `Quick
            test_deque_steal_stress;
        ] );
      ( "parser-totality",
        [
          Alcotest.test_case "formula corpus" `Quick test_parser_corpus;
          Alcotest.test_case "structure corpus" `Quick test_structure_io_corpus;
        ] );
    ]
