(* Cross-library integration tests: the same mathematical fact computed by
   independent code paths must agree. These are the end-to-end checks that
   the toolbox's components compose the way the paper's arguments do. *)

module Signature = Fmtk_logic.Signature
module Formula = Fmtk_logic.Formula
module Parser = Fmtk_logic.Parser
module Transform = Fmtk_logic.Transform
module Structure = Fmtk_structure.Structure
module Tuple = Fmtk_structure.Tuple
module Graph = Fmtk_structure.Graph
module Gen = Fmtk_structure.Gen
module Eval = Fmtk_eval.Eval
module Compile = Fmtk_db.Compile
module Ef = Fmtk_games.Ef
module Distinguish = Fmtk_games.Distinguish
module Fo_circuit = Fmtk_circuits.Fo_circuit
module Bounded_degree = Fmtk_locality.Bounded_degree
module Programs = Fmtk_datalog.Programs

let checkb msg = Alcotest.check Alcotest.bool msg
let f = Parser.parse_exn

let gen_graph =
  let open QCheck2.Gen in
  let* n = int_range 1 6 in
  let* edges =
    list_size (int_range 0 (n * 2))
      (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
  in
  return
    (Structure.make Signature.graph ~size:n
       [ ("E", List.map (fun (u, v) -> [| u; v |]) edges) ])

let gen_sentence =
  QCheck2.Gen.oneofl
    (List.map f
       [
         "exists x. E(x,x)";
         "forall x. exists y. E(x,y)";
         "exists x y. E(x,y) & !E(y,x)";
         "forall x y. E(x,y) -> E(y,x)";
         "exists x. forall y. E(x,y) | x = y";
       ])

(* Four independent implementations of FO truth: the recursive evaluator,
   the RA compiler, the AC0 circuit, and (through NNF/prenex) the
   transformed evaluator. *)
let prop_four_way_agreement =
  QCheck2.Test.make ~count:150 ~name:"eval = RA = circuit = transformed eval"
    QCheck2.Gen.(pair gen_graph gen_sentence)
    (fun (g, phi) ->
      let direct = Eval.sat g phi in
      let via_ra =
        match Compile.sat_any g phi with
        | Ok v -> v
        | Error (`Msg m) -> QCheck2.Test.fail_report m
      in
      let via_circuit =
        Fo_circuit.run
          (Fo_circuit.compile Signature.graph ~size:(Structure.size g) phi)
          g
      in
      let via_nnf = Eval.sat g (Transform.nnf phi) in
      let via_prenex = Eval.sat g (Transform.prenex phi) in
      direct = via_ra && direct = via_circuit && direct = via_nnf
      && direct = via_prenex)

(* TC computed three ways: matrix closure, Datalog, and the FO bounded
   unfolding. On graphs of size <= 3 every reachability is witnessed by a
   walk of <= 3 edges (a simple path of <= 2 edges, or a closed walk of
   exactly 3 for (u,u) on a triangle), so the unfolding is exact there. *)
let prop_tc_three_ways =
  QCheck2.Test.make ~count:100 ~name:"TC: matrix = datalog = bounded FO"
    gen_graph (fun g ->
      QCheck2.assume (Structure.size g <= 3);
      let m = Graph.transitive_closure g in
      let d = Programs.tc_of g in
      let phi =
        f
          "E(x,y) | (exists z. E(x,z) & E(z,y)) | (exists z w. E(x,z) & \
           E(z,w) & E(w,y))"
      in
      let fo = Eval.definable_relation g phi ~vars:[ "x"; "y" ] in
      Tuple.Set.equal m d && Tuple.Set.equal m fo)

(* The EF theorem, executed: duplicator wins n rounds iff the structures
   agree on the template sentences of rank <= n (one direction), and the
   extracted distinguishing sentence is evaluated by three engines. *)
let prop_ef_vs_distinguish_vs_engines =
  QCheck2.Test.make ~count:60 ~name:"EF game <-> distinguishing sentence <-> engines"
    QCheck2.Gen.(pair gen_graph gen_graph)
    (fun (a, b) ->
      let ra_sat s phi =
        match Compile.sat_any s phi with
        | Ok v -> v
        | Error (`Msg m) -> QCheck2.Test.fail_report m
      in
      match Distinguish.sentence ~rounds:2 a b with
      | None -> Ef.duplicator_wins ~rounds:2 a b
      | Some phi ->
          (not (Ef.duplicator_wins ~rounds:2 a b))
          && Eval.sat a phi && ra_sat a phi
          && (not (Eval.sat b phi))
          && not (ra_sat b phi))

(* Bounded-degree Hanf evaluation agrees with the RA engine. *)
let prop_bounded_degree_vs_ra =
  QCheck2.Test.make ~count:40 ~name:"Hanf-cached eval = RA eval on bounded degree"
    QCheck2.Gen.(pair gen_sentence (int_range 5 30))
    (fun (phi, n) ->
      let ev = Bounded_degree.make phi ~degree_bound:2 in
      let g = Gen.cycle n in
      let ra =
        match Compile.sat_any g phi with
        | Ok v -> v
        | Error (`Msg m) -> QCheck2.Test.fail_report m
      in
      Bounded_degree.eval ev g = ra)

(* Counting sentences vs structure sizes across all engines. *)
let test_cardinality_cross_engine () =
  for n = 1 to 5 do
    let s = Gen.set n in
    for k = 1 to 5 do
      let phi = Formula.at_least k in
      let direct = Eval.sat s phi in
      checkb
        (Printf.sprintf "at_least %d on %d (eval)" k n)
        (n >= k) direct;
      checkb
        (Printf.sprintf "at_least %d on %d (ra)" k n)
        direct
        (match Compile.sat_any s phi with
        | Ok v -> v
        | Error (`Msg m) -> Alcotest.fail m)
    done
  done

(* The full EVEN(<) -> CONN pipeline of §3.3 run end to end through the
   database engine, the graph algorithms, and the game certificates. *)
let test_full_pipeline_even_conn () =
  (* 1. EVEN not FO on orders (rank 2 certificate, exact solver). *)
  checkb "EVEN(<) rank-2 certificate" true
    (Fmtk.Method.game_rank ~rounds:2 ~query:Fmtk.Queries.even
       (Gen.linear_order 4) (Gen.linear_order 5)
    = Ok ());
  (* 2. The construction is FO (compiled through RA) and flips parity to
     connectivity. *)
  for n = 3 to 14 do
    let g = Fmtk.Reductions.conn_construction (Gen.linear_order n) in
    checkb
      (Printf.sprintf "parity transfer at %d" n)
      (n mod 2 = 1) (Graph.connected g)
  done;
  (* 3. Hence CONN is not FO — certified independently by Hanf locality. *)
  checkb "CONN Hanf certificate" true
    (Fmtk.Method.hanf_violation ~radius:2 ~query:Fmtk.Queries.connected
       (Gen.cycle 14)
       (Gen.union_of [ Gen.cycle 7; Gen.cycle 7 ])
    = Ok ())

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_four_way_agreement;
      prop_tc_three_ways;
      prop_ef_vs_distinguish_vs_engines;
      prop_bounded_degree_vs_ra;
    ]

let () =
  Alcotest.run "fmtk_integration"
    [
      ( "cross-engine",
        Alcotest.test_case "cardinality sentences" `Quick
          test_cardinality_cross_engine
        :: qcheck_cases );
      ( "pipeline",
        [ Alcotest.test_case "EVEN -> CONN end to end" `Quick test_full_pipeline_even_conn ] );
    ]
