(* Tests for Fmtk_db: relational algebra engine and FO -> RA compilation
   ("FOL as a query language", slides 8-11). *)

module Formula = Fmtk_logic.Formula
module Parser = Fmtk_logic.Parser
module Signature = Fmtk_logic.Signature
module Structure = Fmtk_structure.Structure
module Tuple = Fmtk_structure.Tuple
module Gen = Fmtk_structure.Gen
module Eval = Fmtk_eval.Eval
module Relation = Fmtk_db.Relation
module Algebra = Fmtk_db.Algebra
module Compile = Fmtk_db.Compile

let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg
let f = Parser.parse_exn

let graph_of edges ~size =
  Structure.make Signature.graph ~size
    [ ("E", List.map (fun (u, v) -> [| u; v |]) edges) ]

(* ---------- Relation operators ---------- *)

let r_ab = Relation.make [ "a"; "b" ] [ [| 1; 2 |]; [| 2; 3 |]; [| 1; 3 |] ]
let r_bc = Relation.make [ "b"; "c" ] [ [| 2; 9 |]; [| 3; 7 |] ]

let test_relation_make () =
  checki "cardinality" 3 (Relation.cardinality r_ab);
  checki "arity" 2 (Relation.arity r_ab);
  (try
     ignore (Relation.make [ "a"; "a" ] []);
     Alcotest.fail "duplicate attrs"
   with Invalid_argument _ -> ());
  try
    ignore (Relation.make [ "a" ] [ [| 1; 2 |] ]);
    Alcotest.fail "bad arity"
  with Invalid_argument _ -> ()

let test_project () =
  let p = Relation.project [ "b" ] r_ab in
  checki "dedup on project" 2 (Relation.cardinality p);
  checkb "contains 2" true (Tuple.Set.mem [| 2 |] (Relation.tuples p));
  let swapped = Relation.project [ "b"; "a" ] r_ab in
  checkb "reorder" true (Tuple.Set.mem [| 2; 1 |] (Relation.tuples swapped));
  (* Nullary projection = boolean. *)
  checki "nullary of nonempty" 1 (Relation.cardinality (Relation.project [] r_ab));
  checki "nullary of empty" 0
    (Relation.cardinality (Relation.project [] (Relation.empty [ "a" ])))

let test_select_rename () =
  let s = Relation.select (fun lk -> lk "a" = 1) r_ab in
  checki "selected" 2 (Relation.cardinality s);
  let rn = Relation.rename [ ("a", "x") ] r_ab in
  checkb "renamed attr" true (List.mem "x" (Relation.attrs rn));
  checkb "tuples unchanged" true
    (Tuple.Set.equal (Relation.tuples rn) (Relation.tuples r_ab))

let test_join () =
  let j = Relation.join r_ab r_bc in
  checki "join rows" 3 (Relation.cardinality j);
  Alcotest.(check (list string)) "join attrs" [ "a"; "b"; "c" ] (Relation.attrs j);
  checkb "joined tuple" true (Tuple.Set.mem [| 1; 2; 9 |] (Relation.tuples j));
  (* Cartesian product when no shared attributes. *)
  let prod = Relation.join r_ab (Relation.rename [ ("b", "d"); ("c", "e") ] r_bc) in
  checki "product rows" 6 (Relation.cardinality prod);
  (* Join with nullary true/false. *)
  let nullary_true = Relation.make [] [ [||] ] in
  checkb "join with true is identity" true
    (Relation.equal (Relation.join r_ab nullary_true) r_ab);
  checki "join with false is empty" 0
    (Relation.cardinality (Relation.join r_ab (Relation.empty [])))

let test_union_diff () =
  let u = Relation.union r_ab (Relation.make [ "a"; "b" ] [ [| 9; 9 |]; [| 1; 2 |] ]) in
  checki "union dedups" 4 (Relation.cardinality u);
  let d = Relation.diff r_ab (Relation.make [ "a"; "b" ] [ [| 1; 2 |] ]) in
  checki "diff" 2 (Relation.cardinality d);
  (* Attribute order irrelevant: second operand is realigned. *)
  let d2 = Relation.diff r_ab (Relation.make [ "b"; "a" ] [ [| 2; 1 |] ]) in
  checki "aligned diff" 2 (Relation.cardinality d2);
  try
    ignore (Relation.union r_ab r_bc);
    Alcotest.fail "union with different attrs"
  with Invalid_argument _ -> ()

(* ---------- Algebra eval ---------- *)

let test_algebra_eval () =
  let db =
    Algebra.Database.make
      [ ("R", r_ab); ("S", r_bc) ]
  in
  let open Algebra in
  let e = Project ([ "a"; "c" ], Join (Base "R", Base "S")) in
  let result = Algebra.eval_exn db e in
  checki "paths" 3 (Relation.cardinality result);
  let e2 = Select (Eq_const ("a", 1), Base "R") in
  checki "selection" 2 (Relation.cardinality (Algebra.eval_exn db e2));
  let e3 = Diff (Base "R", Select (Eq_const ("a", 1), Base "R")) in
  checki "difference" 1 (Relation.cardinality (Algebra.eval_exn db e3));
  (* unknown base relations: total error path, no escaping exception *)
  (match Algebra.eval db (Base "T") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown base");
  match Algebra.Database.find db "T" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown base find"

let test_database_of_structure () =
  let sg = Signature.make ~consts:[ "a" ] [ ("E", 2) ] in
  let s = Structure.make sg ~size:3 ~consts:[ ("a", 1) ] [ ("E", [ [| 0; 1 |] ]) ] in
  let db = Algebra.Database.of_structure s in
  checki "adom is full domain" 3
    (Relation.cardinality (Algebra.Database.find_exn db "adom"));
  checki "constant singleton" 1
    (Relation.cardinality (Algebra.Database.find_exn db "@a"));
  checki "E table" 1 (Relation.cardinality (Algebra.Database.find_exn db "E"))

(* ---------- FO -> RA compilation: agreement with direct evaluation ----- *)

let compiled_equals_direct s phi =
  let fv = Formula.free_vars phi in
  (* [_any]: random formulas need not be safe-range; the padded semantics
     agrees with Tarski semantics on the full-domain adom *)
  let _, ra =
    match Compile.answers_any s phi with
    | Ok r -> r
    | Error (`Msg m) -> Alcotest.fail m
  in
  let direct = Eval.definable_relation s phi ~vars:fv in
  Tuple.Set.equal ra direct

let test_compile_atoms () =
  let s = graph_of [ (0, 1); (1, 2); (2, 0); (1, 1) ] ~size:3 in
  List.iter
    (fun q -> checkb q true (compiled_equals_direct s (f q)))
    [
      "E(x,y)";
      "E(x,x)";
      "E(y,x)";
      "x = y";
      "x = x";
      "x != y";
      "true";
      "false";
    ]

let test_compile_connectives () =
  let s = graph_of [ (0, 1); (1, 2); (2, 0); (0, 2) ] ~size:4 in
  List.iter
    (fun q -> checkb q true (compiled_equals_direct s (f q)))
    [
      "E(x,y) & E(y,z)";
      "E(x,y) | E(y,x)";
      "!E(x,y)";
      "E(x,y) -> E(y,x)";
      "E(x,y) <-> E(y,x)";
      "E(x,y) & !E(y,x)";
      "E(x,y) | x = z";
    ]

let test_compile_quantifiers () =
  let s = graph_of [ (0, 1); (1, 2); (2, 3) ] ~size:4 in
  List.iter
    (fun q -> checkb q true (compiled_equals_direct s (f q)))
    [
      "exists y. E(x,y)";
      "forall y. E(x,y) -> exists z. E(y,z)";
      "exists x y. E(x,y)";
      "forall x. exists y. E(x,y) | E(y,x)";
      "exists y. true";
      "exists z. E(x,y)" (* bound variable not used *);
    ]

let test_compile_constants () =
  let sg = Signature.make ~consts:[ "a"; "b" ] [ ("E", 2) ] in
  let s =
    Structure.make sg ~size:4 ~consts:[ ("a", 0); ("b", 3) ]
      [ ("E", [ [| 0; 1 |]; [| 1; 3 |]; [| 0; 3 |] ]) ]
  in
  List.iter
    (fun q -> checkb q true (compiled_equals_direct s (f q)))
    [
      "E('a,x)";
      "E('a,'b)";
      "x = 'a";
      "'a = 'b";
      "'a = 'a";
      "exists x. E('a,x) & E(x,'b)";
    ]

let test_compile_sat () =
  let s = graph_of [ (0, 1); (1, 0) ] ~size:2 in
  let sat_any phi =
    match Compile.sat_any s phi with
    | Ok v -> v
    | Error (`Msg m) -> Alcotest.fail m
  in
  (* ∀∃ sentences are not safe-range; [sat_any] evaluates them anyway *)
  checkb "sat sentence" true (sat_any (f "forall x. exists y. E(x,y)"));
  checkb "unsat sentence" false (sat_any (f "exists x. E(x,x)"));
  checkb "safe-range sentence through sat" true
    (match Compile.sat s (f "exists x y. E(x,y)") with
    | Ok v -> v
    | Error _ -> Alcotest.fail "refused a safe-range sentence");
  (* the default entry point refuses non-safe-range sentences... *)
  (match Compile.sat s (f "forall x. exists y. E(x,y)") with
  | Error (`Msg _) -> ()
  | Ok _ -> Alcotest.fail "expected safe-range refusal");
  (* ...and non-sentences *)
  match Compile.sat_any s (f "E(x,y)") with
  | Error (`Msg _) -> ()
  | Ok _ -> Alcotest.fail "free vars"

(* ---------- Safe range ---------- *)

let test_safe_range () =
  List.iter
    (fun (q, expected) ->
      checkb q expected (Compile.safe_range (f q)))
    [
      ("E(x,y)", true);
      ("exists y. E(x,y)", true);
      ("!E(x,y)", false);
      ("E(x,y) & !E(y,x)", true);
      ("E(x,y) | E(y,z)", false);
      (* union of incompatible free vars *)
      ("E(x,y) | E(y,x)", true);
      ("x = y", false);
      ("E(x,z) & x = y", true);
      ("forall x. E(x,x)", false);
      (* domain-dependent: a fresh loop-less element flips it *)
      ("exists x. !E(x,x)", false);
    ]

(* ---------- QCheck: compiled always agrees with direct ---------- *)

let gen_graph =
  let open QCheck2.Gen in
  let* n = int_range 1 5 in
  let* edges =
    list_size (int_range 0 (n * 2))
      (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
  in
  return (graph_of edges ~size:n)

let gen_formula : Formula.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let open Formula in
  let var = oneofl [ "x"; "y"; "z" ] in
  sized_size (int_range 0 6)
  @@ fix (fun self n ->
         if n <= 0 then
           oneof
             [
               return True;
               return False;
               map2 (fun a b -> Eq (v a, v b)) var var;
               map2 (fun a b -> rel "E" [ v a; v b ]) var var;
             ]
         else
           oneof
             [
               map not_ (self (n - 1));
               map2 (fun a b -> And (a, b)) (self (n / 2)) (self (n / 2));
               map2 (fun a b -> Or (a, b)) (self (n / 2)) (self (n / 2));
               map2 (fun a b -> Implies (a, b)) (self (n / 2)) (self (n / 2));
               map2 (fun a b -> Iff (a, b)) (self (n / 2)) (self (n / 2));
               map2 (fun x g -> exists x g) var (self (n - 1));
               map2 (fun x g -> forall x g) var (self (n - 1));
             ])

let prop_compile_agrees =
  QCheck2.Test.make ~count:300
    ~name:"compiled RA agrees with direct evaluation on random formulas"
    QCheck2.Gen.(pair gen_graph gen_formula)
    (fun (g, phi) -> compiled_equals_direct g phi)

let prop_safe_range_sound =
  (* Safe-range formulas never mention the domain beyond the active part:
     evaluating over the structure vs the structure extended with isolated
     fresh elements must give the same answers. *)
  QCheck2.Test.make ~count:200 ~name:"safe-range queries are domain independent"
    QCheck2.Gen.(pair gen_graph gen_formula)
    (fun (g, phi) ->
      QCheck2.assume (Compile.safe_range phi);
      let bigger =
        Structure.make Signature.graph
          ~size:(Structure.size g + 2)
          [ ("E", Tuple.Set.elements (Structure.rel g "E")) ]
      in
      let fv = Formula.free_vars phi in
      Tuple.Set.equal
        (Eval.definable_relation g phi ~vars:fv)
        (Eval.definable_relation bigger phi ~vars:fv))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_compile_agrees; prop_safe_range_sound ]

let () =
  Alcotest.run "fmtk_db"
    [
      ( "relation",
        [
          Alcotest.test_case "make" `Quick test_relation_make;
          Alcotest.test_case "project" `Quick test_project;
          Alcotest.test_case "select/rename" `Quick test_select_rename;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "union/diff" `Quick test_union_diff;
        ] );
      ( "algebra",
        [
          Alcotest.test_case "eval" `Quick test_algebra_eval;
          Alcotest.test_case "of_structure" `Quick test_database_of_structure;
        ] );
      ( "compile",
        [
          Alcotest.test_case "atoms" `Quick test_compile_atoms;
          Alcotest.test_case "connectives" `Quick test_compile_connectives;
          Alcotest.test_case "quantifiers" `Quick test_compile_quantifiers;
          Alcotest.test_case "constants" `Quick test_compile_constants;
          Alcotest.test_case "sentences" `Quick test_compile_sat;
          Alcotest.test_case "safe range" `Quick test_safe_range;
        ] );
      ("properties", qcheck_cases);
    ]
