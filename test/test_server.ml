(* Serve-layer tests: the total JSON codec, the wire protocol, the
   structure store, the compiled-query cache, and in-process end-to-end
   runs of the full server — including admission-control shedding,
   fault-injected requests, and the graceful-shutdown drain.

   End-to-end tests bind a TCP listener on 127.0.0.1 port 0 (the kernel
   picks a free port) and run the accept loop on a POSIX thread, so the
   whole suite works inside an unprivileged sandbox. *)

module Json = Fmtk_server.Json
module Protocol = Fmtk_server.Protocol
module Store = Fmtk_server.Store
module Journal = Fmtk_server.Journal
module Qcache = Fmtk_server.Qcache
module Server = Fmtk_server.Server
module Budget = Fmtk_runtime.Budget
module Io_fault = Fmtk_runtime.Io_fault
module Gen = Fmtk_structure.Gen
module Structure = Fmtk_structure.Structure
module Structure_io = Fmtk_structure.Structure_io
module Signature = Fmtk_logic.Signature
module Parser = Fmtk_logic.Parser

let checkb msg = Alcotest.check Alcotest.bool msg
let checks msg = Alcotest.check Alcotest.string msg
let checki msg = Alcotest.check Alcotest.int msg

(* ---------- JSON codec ---------- *)

let test_json_roundtrip () =
  let docs =
    [
      "null";
      "true";
      "[1,2,3]";
      {|{"a":1,"b":[true,null,"x"],"c":{"d":-2.5}}|};
      {|"\u00e9\u0041\ud83d\ude00"|};
      (* astral plane via surrogate pair *)
      {|{"nested":[[[{"deep":[1]}]]],"s":"a\"b\\c\nd"}|};
      "-0.5";
      "1e3";
      "[]";
      "{}";
    ]
  in
  List.iter
    (fun doc ->
      match Json.parse doc with
      | Error e -> Alcotest.failf "valid doc %S rejected: %s" doc e
      | Ok v -> (
          let printed = Json.to_string v in
          match Json.parse printed with
          | Error e -> Alcotest.failf "printed form %S rejected: %s" printed e
          | Ok v' ->
              checkb (Printf.sprintf "round-trip %S" doc) true (v = v')))
    docs;
  (* Integral floats print as ints; one line, no control chars. *)
  checks "int print" "42" (Json.to_string (Json.Num 42.));
  checks "escape print" {|"a\nb"|} (Json.to_string (Json.Str "a\nb"));
  checkb "single line" true
    (not (String.contains (Json.to_string (Json.Obj [ ("k", Json.Str "v\n") ])) '\n'))

let test_json_totality () =
  let bad =
    [
      "";
      "   ";
      "{";
      "}";
      "[1,2";
      "[1 2]";
      {|{"a"}|};
      {|{"a":}|};
      {|{a:1}|};
      "tru";
      "nulll?";
      "+5";
      "0x10";
      "1.";
      ".5";
      "1e";
      "\"unterminated";
      "\"bad \\q escape\"";
      "\"ctrl \x01 char\"";
      "\"lone surrogate \\ud800\"";
      "[1],[2]";
      "{} trailing";
      String.make 300 '[' (* past max_depth *);
    ]
  in
  List.iter
    (fun doc ->
      match Json.parse doc with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "malformed doc %S accepted" doc)
    bad;
  (* Random garbage never raises. *)
  let rng = Random.State.make [| 77 |] in
  for _ = 1 to 500 do
    let n = Random.State.int rng 40 in
    let s = String.init n (fun _ -> Char.chr (Random.State.int rng 256)) in
    match Json.parse s with Ok _ | Error _ -> ()
  done;
  (* Depth limit is a parameter. *)
  (match Json.parse ~max_depth:2 "[[[1]]]" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "depth limit ignored");
  match Json.parse ~max_depth:4 "[[[1]]]" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "shallow doc rejected: %s" e

(* ---------- protocol ---------- *)

let body_code env =
  match env.Protocol.body with
  | Error (code, _) -> Some code
  | Ok _ -> None

let test_protocol_parse () =
  (* Well-formed requests of every op. *)
  let ok line =
    match (Protocol.parse_request line).Protocol.body with
    | Ok (req, limits) -> (req, limits)
    | Error (c, m) -> Alcotest.failf "%S rejected: %s %s" line c m
  in
  (match ok {|{"op":"ping","id":1}|} with
  | Protocol.Ping, _ -> ()
  | _ -> Alcotest.fail "ping misparsed");
  (match ok {|{"op":"load","name":"c","spec":"cycle:6"}|} with
  | Protocol.Load { name = "c"; spec = Some "cycle:6"; text = None }, _ -> ()
  | _ -> Alcotest.fail "load misparsed");
  (match ok {|{"op":"eval","structure":"c","formula":"E(x,y)","timeout":1.5,"fuel":100}|} with
  | Protocol.Eval { structure = "c"; formula = "E(x,y)"; ra = false }, l ->
      checkb "timeout" true (l.Protocol.timeout = Some 1.5);
      checkb "fuel" true (l.Protocol.fuel = Some 100)
  | _ -> Alcotest.fail "eval misparsed");
  (match ok {|{"op":"game","left":"a","right":"b","rounds":3,"pebbles":2,"counting":true}|} with
  | Protocol.Game { rounds = 3; pebbles = Some 2; counting = true; _ }, _ -> ()
  | _ -> Alcotest.fail "game misparsed");
  (match ok {|{"op":"decide","left":"a","right":"b","rank":4}|} with
  | Protocol.Decide { rank = 4; _ }, _ -> ()
  | _ -> Alcotest.fail "decide misparsed");
  (match ok {|{"op":"drop","name":"c"}|} with
  | Protocol.Drop { name = "c" }, _ -> ()
  | _ -> Alcotest.fail "drop misparsed");
  (* Inline classification. *)
  checkb "ping inline" true (Protocol.is_inline Protocol.Ping);
  checkb "stats inline" true (Protocol.is_inline Protocol.Stats);
  checkb "decide pooled" false
    (Protocol.is_inline (Protocol.Decide { left = "a"; right = "b"; rank = 1 }));
  (* Drop mutates the store, so it must go through the pool (and the
     journal) like load, never the inline fast path. *)
  checkb "drop pooled" false
    (Protocol.is_inline (Protocol.Drop { name = "c" }));
  checkb "drop without name" true
    (body_code (Protocol.parse_request {|{"op":"drop"}|}) = Some "bad-request");
  (* Malformed bodies keep the id and name a code. *)
  let env = Protocol.parse_request {|{"op":"nope","id":7}|} in
  checkb "unknown op id echoed" true (env.Protocol.id = Some (Json.Num 7.));
  checkb "unknown op code" true (body_code env = Some "bad-request");
  checkb "bad json code" true
    (body_code (Protocol.parse_request "{oops") = Some "bad-json");
  checkb "non-object code" true
    (body_code (Protocol.parse_request "[1,2]") = Some "bad-request");
  checkb "missing field code" true
    (body_code (Protocol.parse_request {|{"op":"eval","structure":"c"}|})
    = Some "bad-request");
  checkb "wrong type code" true
    (body_code
       (Protocol.parse_request {|{"op":"decide","left":"a","right":"b","rank":"x"}|})
    = Some "bad-request");
  (* Responses are valid single-line JSON echoing the id. *)
  let line = Protocol.ok ~ms:1.25 ~id:(Some (Json.Str "r1")) [ ("x", Json.of_int 1) ] in
  (match Json.parse line with
  | Ok v ->
      checkb "ok status" true (Json.member "status" v = Some (Json.Str "ok"));
      checkb "ok id" true (Json.member "id" v = Some (Json.Str "r1"))
  | Error e -> Alcotest.failf "ok line unparseable: %s" e);
  match Json.parse (Protocol.shed ~id:None ~retry_after_ms:50) with
  | Ok v ->
      checkb "shed status" true
        (Json.member "status" v = Some (Json.Str "shed"));
      checkb "shed code" true
        (Json.member "code" v = Some (Json.Str "overloaded"))
  | Error e -> Alcotest.failf "shed line unparseable: %s" e

(* ---------- store ---------- *)

let test_store () =
  let st = Store.create ~capacity:2 ~max_size:10 () in
  checkb "put" true (Store.put st ~name:"a" (Gen.cycle 3) = Ok ());
  checkb "get" true (Store.get st "a" <> None);
  checkb "get missing" true (Store.get st "zzz" = None);
  (* Rebinding an existing name is allowed even at capacity. *)
  checkb "put b" true (Store.put st ~name:"b" (Gen.cycle 4) = Ok ());
  checkb "rebind at capacity" true (Store.put st ~name:"a" (Gen.cycle 5) = Ok ());
  checkb "rebind took" true
    (match Store.get st "a" with
    | Some s -> Structure.size s = 5
    | None -> false);
  (* Fresh names past capacity and oversized structures are refused —
     with distinct error codes, so a client knows whether dropping
     something would help. *)
  checkb "store full" true
    (match Store.put st ~name:"c" (Gen.cycle 3) with
    | Error (Store.Full _) -> true
    | _ -> false);
  checkb "oversized" true
    (match Store.put st ~name:"a" (Gen.cycle 11) with
    | Error (Store.Too_large _) -> true
    | _ -> false);
  checki "count" 2 (Store.count st);
  checki "names" 2 (List.length (Store.names st));
  (* Removal frees capacity; removing an absent name is a clean no. *)
  checkb "remove" true (Store.remove st "a" = Ok true);
  checkb "remove absent" true (Store.remove st "a" = Ok false);
  checkb "freed capacity" true (Store.put st ~name:"c" (Gen.cycle 3) = Ok ());
  checki "count after churn" 2 (Store.count st);
  (* In-memory stores have no durability surface. *)
  checkb "no durability stats" true (Store.durability_stats st = None);
  checkb "no compaction" true
    (match Store.compact st with Error _ -> true | Ok () -> false)

let test_store_update () =
  let module Tuple = Fmtk_structure.Tuple in
  let st = Store.create () in
  checkb "seed" true (Store.put st ~name:"g" (Gen.cycle 4) = Ok ());
  let edge s u v = Structure.mem s "E" [| u; v |] in
  (* Insert is visible through the store and returns the new binding
     plus the name's bumped mutation sequence (the seed put was seq 1). *)
  (match Store.update st ~name:"g" ~rel:"E" [| 0; 2 |] ~add:true with
  | Ok (s', true, seq) ->
      checkb "insert visible in returned value" true (edge s' 0 2);
      checkb "insert visible via get" true
        (match Store.get st "g" with Some s -> edge s 0 2 | None -> false);
      checkb "returned value is the binding" true (Store.get st "g" = Some s');
      checki "insert bumps seq past the put" 2 seq;
      checkb "get_seq agrees" true (Store.get_seq st "g" = Some (s', seq))
  | _ -> Alcotest.fail "insert refused");
  (* Idempotent insert / absent delete: acknowledged no-ops, binding and
     sequence untouched. *)
  let before = Store.get st "g" in
  (match Store.update st ~name:"g" ~rel:"E" [| 0; 2 |] ~add:true with
  | Ok (_, false, seq) -> checki "no-op keeps seq" 2 seq
  | _ -> Alcotest.fail "re-insert should be a no-op");
  (match Store.update st ~name:"g" ~rel:"E" [| 2; 0 |] ~add:false with
  | Ok (_, false, seq) -> checki "no-op keeps seq" 2 seq
  | _ -> Alcotest.fail "absent delete should be a no-op");
  checkb "no-ops keep identity" true (Store.get st "g" = before);
  (* Delete removes and keeps the sequence climbing. *)
  (match Store.update st ~name:"g" ~rel:"E" [| 0; 2 |] ~add:false with
  | Ok (s', true, seq) ->
      checkb "delete took" true (not (edge s' 0 2));
      checki "delete bumps seq" 3 seq
  | _ -> Alcotest.fail "delete refused");
  (* Total validation: every bad input is a typed error. *)
  let invalid = function Error (`Invalid _) -> true | _ -> false in
  checkb "unknown name" true
    (match Store.update st ~name:"zzz" ~rel:"E" [| 0; 1 |] ~add:true with
    | Error (`Unknown _) -> true
    | _ -> false);
  checkb "unknown rel" true
    (invalid (Store.update st ~name:"g" ~rel:"R" [| 0 |] ~add:true));
  checkb "bad arity" true
    (invalid (Store.update st ~name:"g" ~rel:"E" [| 0 |] ~add:true));
  checkb "out of domain" true
    (invalid (Store.update st ~name:"g" ~rel:"E" [| 0; 7 |] ~add:true))

(* ---------- journal codec ---------- *)

let tmp_counter = ref 0

let rec rm_rf p =
  match Unix.lstat p with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
      Unix.rmdir p
  | _ -> Unix.unlink p
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_tmp_dir f =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fmtk-t%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> try rm_rf dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let write_file path bytes =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc bytes)

let replay_list path =
  match Journal.replay ~path ~init:[] ~f:(fun acc r -> r :: acc) with
  | Ok (rev, n, tail) -> Ok (List.rev rev, n, tail)
  | Error _ as e -> e

let test_journal_roundtrip () =
  with_tmp_dir @@ fun dir ->
  let path = Filename.concat dir "j.fmtk" in
  let records =
    [
      Journal.Put { name = "a"; data = "" };
      Journal.Remove { name = "" };
      Journal.Put
        { name = "weird \n\x00\xff name"; data = String.init 256 Char.chr };
      Journal.Remove { name = "gone" };
    ]
  in
  write_file path (String.concat "" (List.map Journal.encode records));
  (match replay_list path with
  | Ok (rs, n, Journal.Clean) ->
      checki "replay count" 4 n;
      checkb "records round-trip" true (rs = records)
  | Ok (_, _, Journal.Torn _) -> Alcotest.fail "intact file reported torn"
  | Error e -> Alcotest.fail (Journal.error_to_string e));
  (* A missing journal is an empty journal, not an error. *)
  match replay_list (Filename.concat dir "absent") with
  | Ok ([], 0, Journal.Clean) -> ()
  | _ -> Alcotest.fail "missing file should replay as empty"

let test_journal_structure_forms () =
  (* Graph-shaped structures journal in the streaming [graph N] form;
     CSR-backed graphs round-trip through it byte-identically. *)
  let n = Structure.csr_auto_threshold + 10 in
  let big = Gen.cycle n in
  let data = Journal.encode_structure big in
  checkb "csr graph journals in graph form" true
    (String.length data > 6 && String.sub data 0 6 = "graph ");
  (match Journal.decode_structure data with
  | Ok s' ->
      checkb "csr round-trip equal" true (Structure.equal big s');
      checks "csr round-trip print"
        (Structure_io.to_string big)
        (Structure_io.to_string s')
  | Error e -> Alcotest.fail e);
  (* A single-binary-relation structure NOT named E must keep the
     directive form — the graph form would rename its relation. *)
  let lo = Gen.linear_order 5 in
  let data = Journal.encode_structure lo in
  checkb "non-graph keeps directive form" true
    (String.length data < 6 || String.sub data 0 6 <> "graph ");
  match Journal.decode_structure data with
  | Ok s' -> checkb "directive round-trip" true (Structure.equal lo s')
  | Error e -> Alcotest.fail e

let prop_journal_records_roundtrip =
  let open QCheck2 in
  let gen_record =
    Gen.(
      let any_string = string_size ~gen:(char_range '\x00' '\xff') (0 -- 64) in
      oneof
        [
          map2
            (fun name data -> Journal.Put { name; data })
            any_string any_string;
          map (fun name -> Journal.Remove { name }) any_string;
        ])
  in
  QCheck2.Test.make ~name:"journal file of random records round-trips"
    ~count:60
    QCheck2.Gen.(list_size (0 -- 20) gen_record)
    (fun records ->
      with_tmp_dir @@ fun dir ->
      let path = Filename.concat dir "j.fmtk" in
      write_file path (String.concat "" (List.map Journal.encode records));
      match replay_list path with
      | Ok (rs, n, Journal.Clean) ->
          n = List.length records && rs = records
      | _ -> false)

let prop_journal_structures_roundtrip =
  let gen_structure =
    QCheck2.Gen.(
      let* pick = 0 -- 2 in
      match pick with
      | 0 ->
          let* n = 1 -- 30 in
          let* seed = 0 -- 10_000 in
          return
            (Gen.random_graph ~rng:(Random.State.make [| seed |]) n 0.3)
      | 1 ->
          let* n = 1 -- 24 in
          return (Gen.cycle n)
      | _ ->
          let* n = 1 -- 12 in
          return (Gen.linear_order n))
  in
  QCheck2.Test.make ~name:"journal structure payloads round-trip" ~count:60
    gen_structure (fun s ->
      match Journal.decode_structure (Journal.encode_structure s) with
      | Error _ -> false
      | Ok s' ->
          Structure.equal s s'
          && Structure_io.to_string s = Structure_io.to_string s')

(* The torn/corrupt corpus: one fixed 3-record journal, damaged every
   possible way. Truncation at every byte boundary must recover the
   clean prefix (a kill -9 can produce exactly these files); a flipped
   byte anywhere before the final record's payload must refuse. *)

let corpus_records =
  [
    Journal.Put { name = "a"; data = "alpha" };
    Journal.Put { name = "bb"; data = String.make 37 'x' };
    Journal.Remove { name = "a" };
  ]

let test_journal_truncation_corpus () =
  with_tmp_dir @@ fun dir ->
  let path = Filename.concat dir "j.fmtk" in
  let encoded = List.map Journal.encode corpus_records in
  let full = String.concat "" encoded in
  let total = String.length full in
  (* Record-end offsets, 0 included: every clean stopping point. *)
  let boundaries =
    List.rev
      (List.fold_left
         (fun acc e -> (List.hd acc + String.length e) :: acc)
         [ 0 ] encoded)
  in
  for cut = 0 to total do
    write_file path (String.sub full 0 cut);
    let complete =
      List.length (List.filter (fun b -> b > 0 && b <= cut) boundaries)
    in
    let last_boundary =
      List.fold_left (fun m b -> if b <= cut then max m b else m) 0 boundaries
    in
    match replay_list path with
    | Error e ->
        Alcotest.failf "cut at %d refused: %s" cut (Journal.error_to_string e)
    | Ok (rs, n, tail) -> (
        checki (Printf.sprintf "records at cut %d" cut) complete n;
        checkb
          (Printf.sprintf "prefix at cut %d" cut)
          true
          (rs = List.filteri (fun i _ -> i < complete) corpus_records);
        match tail with
        | Journal.Clean ->
            checkb
              (Printf.sprintf "clean only at boundaries (cut %d)" cut)
              true (cut = last_boundary)
        | Journal.Torn { at; dropped } ->
            checkb
              (Printf.sprintf "torn off-boundary (cut %d)" cut)
              true
              (cut <> last_boundary);
            checki (Printf.sprintf "torn at (cut %d)" cut) last_boundary at;
            checki
              (Printf.sprintf "torn dropped (cut %d)" cut)
              (cut - last_boundary) dropped)
  done

let test_journal_flip_corpus () =
  with_tmp_dir @@ fun dir ->
  let path = Filename.concat dir "j.fmtk" in
  let encoded = List.map Journal.encode corpus_records in
  let full = String.concat "" encoded in
  let total = String.length full in
  let last_off =
    List.fold_left ( + ) 0
      (List.map String.length
         (List.filteri
            (fun i _ -> i < List.length encoded - 1)
            encoded))
  in
  (* Damage before this offset can never be a legal kill -9 tear; at or
     past it (the final record's payload) a checksum failure ending at
     EOF is indistinguishable from one, and must be dropped as a tear. *)
  let last_payload_start = last_off + 12 in
  for p = 0 to total - 1 do
    let b = Bytes.of_string full in
    Bytes.set b p (Char.chr (Char.code (Bytes.get b p) lxor 0xff));
    write_file path (Bytes.to_string b);
    match replay_list path with
    | Error (Journal.Corrupt _) ->
        checkb
          (Printf.sprintf "corrupt only before last payload (flip %d)" p)
          true
          (p < last_payload_start)
    | Ok (rs, n, Journal.Torn { at; _ }) ->
        checkb
          (Printf.sprintf "tear only in last payload (flip %d)" p)
          true
          (p >= last_payload_start);
        checki (Printf.sprintf "tear keeps prefix (flip %d)" p) 2 n;
        checki (Printf.sprintf "tear offset (flip %d)" p) last_off at;
        checkb
          (Printf.sprintf "tear prefix records (flip %d)" p)
          true
          (rs = List.filteri (fun i _ -> i < 2) corpus_records)
    | Ok (_, _, Journal.Clean) ->
        Alcotest.failf "flipped byte at %d went undetected" p
    | Error (Journal.Io_error e) ->
        Alcotest.failf "flip at %d gave io error: %s" p e
  done

(* ---------- durable store ---------- *)

let put_ok st name s =
  match Store.put st ~name s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "put %s: %s" name (Store.put_error_to_string e)

let open_dir ?sync ?snapshot_threshold ?inject dir =
  match Store.open_durable ?sync ?snapshot_threshold ?inject ~dir () with
  | Ok v -> v
  | Error e -> Alcotest.failf "open_durable: %s" e

let print_of st name =
  match Store.get st name with
  | Some s -> Structure_io.to_string s
  | None -> Alcotest.failf "structure %s missing after recovery" name

let test_store_recovery () =
  with_tmp_dir @@ fun dir ->
  let st, r = open_dir dir in
  checki "fresh dir has nothing to recover" 0
    (r.Store.snapshot_records + r.Store.journal_records);
  put_ok st "a" (Gen.cycle 5);
  put_ok st "b" (Gen.linear_order 4);
  let b_print = print_of st "b" in
  checkb "remove acked" true (Store.remove st "a" = Ok true);
  put_ok st "c" (Gen.grid 2 3);
  let c_print = print_of st "c" in
  Store.close st;
  (* A closed durable store is read-only. *)
  checkb "closed store refuses puts" true
    (match Store.put st ~name:"z" (Gen.cycle 3) with
    | Error (Store.Io _) -> true
    | _ -> false);
  let st2, r2 = open_dir dir in
  checki "journal replayed" 4 r2.Store.journal_records;
  checki "torn bytes" 0 r2.Store.torn_bytes;
  checki "recovered count" 2 (Store.count st2);
  checkb "removed name stays gone" true (Store.get st2 "a" = None);
  checks "b byte-identical" b_print (print_of st2 "b");
  checks "c byte-identical" c_print (print_of st2 "c");
  (* The recovered store keeps acking mutations. *)
  put_ok st2 "d" (Gen.cycle 7);
  Store.close st2;
  let st3, _ = open_dir dir in
  checki "second recovery" 3 (Store.count st3);
  Store.close st3

let test_store_torn_write () =
  with_tmp_dir @@ fun dir ->
  (* The third append dies after 7 bytes — a torn frame on disk, the
     "process" gone. Everything acked before it must survive; the torn
     record must be invisible; the journal must keep accepting work. *)
  let inject = Io_fault.create (Io_fault.Short_write { at = 3; bytes = 7 }) in
  let st, _ = open_dir ~inject dir in
  put_ok st "a" (Gen.cycle 5);
  put_ok st "b" (Gen.cycle 6);
  let a_print = print_of st "a" in
  (match Store.put st ~name:"c" (Gen.cycle 9) with
  | exception Io_fault.Crash -> ()
  | Ok () -> Alcotest.fail "injected short write did not crash"
  | Error e -> Alcotest.fail (Store.put_error_to_string e));
  let st2, r = open_dir dir in
  checkb "torn tail truncated" true (r.Store.torn_bytes > 0);
  checki "acked mutations survived" 2 (Store.count st2);
  checkb "torn record invisible" true (Store.get st2 "c" = None);
  checks "acked bytes intact" a_print (print_of st2 "a");
  (* The truncated journal is a valid append point. *)
  put_ok st2 "c" (Gen.cycle 9);
  Store.close st2;
  let st3, r3 = open_dir dir in
  checki "clean after re-append" 0 r3.Store.torn_bytes;
  checki "final count" 3 (Store.count st3);
  Store.close st3

let test_store_crash_points () =
  (* Crash_after_append: the record is complete on disk but never
     acked — recovering it is allowed (and with a completed append,
     expected). Crash_before_sync: same file state, crash in fsync. In
     both cases recovery must be clean and every acked put intact. *)
  List.iter
    (fun point ->
      with_tmp_dir @@ fun dir ->
      let inject = Io_fault.create point in
      let st, _ = open_dir ~inject dir in
      put_ok st "a" (Gen.cycle 5);
      (match Store.put st ~name:"b" (Gen.cycle 6) with
      | exception Io_fault.Crash -> ()
      | Ok () -> Alcotest.fail "injected crash did not fire"
      | Error e -> Alcotest.fail (Store.put_error_to_string e));
      let st2, r = open_dir dir in
      checki "no tear from a clean append" 0 r.Store.torn_bytes;
      checkb "acked put survived" true (Store.get st2 "a" <> None);
      checkb "unacked put recovered whole, or not at all" true
        (match Store.get st2 "b" with
        | None -> true
        | Some s -> Structure.equal s (Gen.cycle 6));
      Store.close st2)
    [ Io_fault.Crash_after_append 2; Io_fault.Crash_before_sync 2 ]

let test_store_compaction () =
  with_tmp_dir @@ fun dir ->
  let st, _ = open_dir ~sync:Store.Never ~snapshot_threshold:1 dir in
  (* threshold clamps to 4096 bytes; ~200 records cross it repeatedly *)
  for i = 1 to 200 do
    put_ok st (Printf.sprintf "s%03d" i) (Gen.cycle (3 + (i mod 7)))
  done;
  let d =
    match Store.durability_stats st with
    | Some d -> d
    | None -> Alcotest.fail "durable store without stats"
  in
  checkb "compaction ran" true (d.Store.compactions >= 1);
  checkb "journal stays bounded" true (d.Store.journal_bytes < 3 * 4096);
  (* Explicit compaction empties the journal entirely. *)
  (match Store.compact st with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let d2 = Option.get (Store.durability_stats st) in
  checki "journal empty after compact" 0 d2.Store.journal_bytes;
  Store.close st;
  let st2, r = open_dir dir in
  checki "all records in the snapshot" 200 r.Store.snapshot_records;
  checki "journal tail empty" 0 r.Store.journal_records;
  checki "everything recovered" 200 (Store.count st2);
  checks "spot-check bytes"
    (Structure_io.to_string (Gen.cycle (3 + (77 mod 7))))
    (print_of st2 "s077");
  Store.close st2

let test_store_corrupt_refusal () =
  with_tmp_dir @@ fun dir ->
  let st, _ = open_dir dir in
  put_ok st "a" (Gen.cycle 5);
  put_ok st "b" (Gen.cycle 6);
  Store.close st;
  (* Flip a byte in the FIRST record: mid-file damage, not a tear. *)
  let jpath = Filename.concat dir "journal.fmtk" in
  let data = In_channel.with_open_bin jpath In_channel.input_all in
  let b = Bytes.of_string data in
  Bytes.set b 2 (Char.chr (Char.code (Bytes.get b 2) lxor 0xff));
  write_file jpath (Bytes.to_string b);
  match Store.open_durable ~dir () with
  | Ok _ -> Alcotest.fail "corrupt journal accepted"
  | Error e ->
      checkb "refusal names the corruption" true
        (let has sub =
           let n = String.length sub and m = String.length e in
           let rec go i = i + n <= m && (String.sub e i n = sub || go (i + 1)) in
           go 0
         in
         has "corrupt" && has "byte")

(* ---------- query cache ---------- *)

let test_qcache () =
  let qc = Qcache.create ~capacity:8 () in
  let c6 = Gen.cycle 6 in
  let sg = Structure.signature c6 in
  (* Parse tier: same text parses once, bad text is a cached Error. *)
  (match Qcache.formula qc sg "exists x. exists y. E(x,y)" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Qcache.formula qc sg "exists x. (" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad formula accepted");
  (* Validation: relations must exist in the signature with the right
     arity. *)
  (match Qcache.formula qc sg "exists x. R(x)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown relation accepted");
  (match Qcache.formula qc sg "exists x. E(x)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong arity accepted");
  (* Compiled tier: second probe with the same (name, text, structure)
     hits; rebinding the name invalidates. *)
  let text = "exists x. exists y. E(x,y)" in
  let phi =
    match Qcache.formula qc sg text with Ok f -> f | Error e -> Alcotest.fail e
  in
  let run s = Qcache.with_compiled qc ~sname:"c" s text phi (fun _ -> ()) in
  run c6;
  checki "first probe misses" 0 (Qcache.hits qc);
  run c6;
  checki "second probe hits" 1 (Qcache.hits qc);
  (* A different structure under the same name must not reuse the old
     closure (compiled closures capture the structure's indexes). *)
  Qcache.invalidate qc ~sname:"c";
  let c7 = Gen.cycle 7 in
  let seen = ref (-1) in
  Qcache.with_compiled qc ~sname:"c" c7 text phi (fun _ -> seen := Structure.size c7);
  checki "rebind recompiles against the new structure" 7 !seen;
  checkb "rebind was a miss" true (Qcache.misses qc >= 2)

(* The maintained-plan cache applies store deltas strictly in the
   store's commit order (the sequence number [Store.update] assigns
   under its mutex). Propagation itself runs outside that critical
   section, so this drives the cache by hand with reordered, duplicate,
   and gapped sequences: in-order deltas maintain the materialization,
   anything else must either be a no-op (already reflected) or evict the
   entry — a hit must never serve counts that diverge from the live
   structure. *)
let test_pcache_ordering () =
  let module Pcache = Fmtk_server.Pcache in
  let st = Store.create () in
  let pc = Pcache.create ~capacity:8 () in
  checkb "seed" true (Store.put st ~name:"g" (Gen.cycle 4) = Ok ());
  let text = "E(x,y)" in
  let phi =
    let sg = Structure.signature (Gen.cycle 4) in
    match Qcache.formula (Qcache.create ()) sg text with
    | Ok f -> f
    | Error e -> Alcotest.fail e
  in
  let count () =
    let s, seq =
      match Store.get_seq st "g" with
      | Some p -> p
      | None -> Alcotest.fail "binding vanished"
    in
    match
      Pcache.with_result pc ~sname:"g" ~seq s text phi (fun _ rel ->
          Fmtk_db.Relation.cardinality rel)
    with
    | Ok n -> n
    | Error e -> Alcotest.fail e
  in
  let update tup add =
    match Store.update st ~name:"g" ~rel:"E" tup ~add with
    | Ok (s', true, seq) -> (s', seq)
    | _ -> Alcotest.fail "update refused"
  in
  (* Build the materialization, then maintain it through one in-order
     delta: the second eval must hit and see the inserted edge. *)
  checki "initial materialization" 4 (count ());
  let s2, seq2 = update [| 0; 2 |] true in
  Pcache.apply_update pc ~sname:"g" ~seq:seq2 s2 ~rel:"E" [| 0; 2 |] ~add:true;
  checki "in-order delta maintained" 5 (count ());
  checki "maintained one delta" 1 (Pcache.maintained pc);
  checki "maintained entry hits" 1 (Pcache.hits pc);
  (* Two further commits whose propagations arrive reversed: the gapped
     sequence must evict the entry (applying it would skip the middle
     delta), the late one must find nothing, and the next eval rebuilds
     from the live structure. *)
  let _s3, seq3 = update [| 1; 3 |] true in
  let s4, seq4 = update [| 2; 0 |] true in
  Pcache.apply_update pc ~sname:"g" ~seq:seq4 s4 ~rel:"E" [| 2; 0 |] ~add:true;
  Pcache.apply_update pc ~sname:"g" ~seq:seq3 s4 ~rel:"E" [| 1; 3 |] ~add:true;
  let misses_before = Pcache.misses pc in
  checki "reordered deltas evict, rebuild is exact" 7 (count ());
  checki "rebuild was a miss" (misses_before + 1) (Pcache.misses pc);
  (* A duplicate of an already-reflected delta must be skipped, not
     double-applied: the maintained count stays exact. *)
  Pcache.apply_update pc ~sname:"g" ~seq:seq3 s4 ~rel:"E" [| 1; 3 |] ~add:true;
  checki "stale delta is a no-op" 7 (count ());
  checki "stale delta not counted as maintained" 1 (Pcache.maintained pc)

(* ---------- end-to-end ---------- *)

(* A tiny blocking client for the line protocol. *)
module Client = struct
  type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

  let connect port =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

  let request t line =
    output_string t.oc line;
    output_char t.oc '\n';
    flush t.oc;
    input_line t.ic

  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
end

let with_server ?(configure = fun c -> c) ?preload f =
  let cfg =
    configure
      {
        (Server.default_config (Server.Tcp ("127.0.0.1", 0))) with
        Server.workers = 2;
        log = None;
      }
  in
  let srv =
    match Server.create ?preload cfg with
    | Ok s -> s
    | Error e -> Alcotest.failf "server create failed: %s" e
  in
  let runner = Thread.create Server.run srv in
  let port = match Server.port srv with Some p -> p | None -> Alcotest.fail "no port" in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown srv;
      Thread.join runner)
    (fun () -> f srv port)

let field name resp =
  match Json.parse resp with
  | Ok v -> Json.member name v
  | Error e -> Alcotest.failf "unparseable response %S: %s" resp e

let status resp =
  match field "status" resp with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.failf "response without status: %S" resp

let code resp =
  match field "code" resp with Some (Json.Str s) -> Some s | _ -> None

let test_end_to_end () =
  with_server ~preload:[ ("c6", "cycle:6") ] @@ fun srv port ->
  let c = Client.connect port in
  checks "ping" "ok" (status (Client.request c {|{"op":"ping","id":1}|}));
  checks "load" "ok"
    (status (Client.request c {|{"op":"load","id":2,"name":"c7","spec":"cycle:7"}|}));
  (* Sentence evaluation, repeated: second time must hit the cache. *)
  let q = {|{"op":"eval","id":3,"structure":"c6","formula":"forall x. exists y. E(x,y)"}|} in
  let r = Client.request c q in
  checks "eval" "ok" (status r);
  (match field "result" r with
  | Some (Json.Obj fields) ->
      checkb "eval value" true (List.assoc_opt "value" fields = Some (Json.Bool true))
  | _ -> Alcotest.fail "eval result shape");
  ignore (Client.request c q);
  let s = Server.stats srv in
  checkb "cache hit recorded" true (s.Server.cache_hits > 0);
  (* Free-variable query returns bindings. *)
  let r = Client.request c {|{"op":"eval","id":4,"structure":"c6","formula":"E(x,y)"}|} in
  (match field "result" r with
  | Some (Json.Obj fields) ->
      checkb "answer count" true (List.assoc_opt "count" fields = Some (Json.Num 6.))
  | _ -> Alcotest.fail "answers shape");
  (* Games and the decide ladder. *)
  let r = Client.request c {|{"op":"game","id":5,"left":"c6","right":"c7","rounds":3}|} in
  checks "game" "ok" (status r);
  let r = Client.request c {|{"op":"decide","id":6,"left":"c6","right":"c7","rank":3}|} in
  checkb "decide answers" true (status r = "ok" || status r = "degraded");
  (* The failure surface: each bad input gets a structured error and the
     connection keeps serving. *)
  let expect_error name line want =
    let r = Client.request c line in
    checks (name ^ " status") "error" (status r);
    checks (name ^ " code") want
      (match code r with Some cd -> cd | None -> "<none>")
  in
  expect_error "bad json" "{nope" "bad-json";
  expect_error "bad request" {|{"op":"warp"}|} "bad-request";
  expect_error "unknown structure"
    {|{"op":"eval","id":8,"structure":"ghost","formula":"E(x,y)"}|}
    "unknown-structure";
  expect_error "parse error"
    {|{"op":"eval","id":9,"structure":"c6","formula":"exists x. ("}|}
    "parse-error";
  expect_error "over-limit deadline"
    {|{"op":"decide","id":10,"left":"c6","right":"c7","rank":3,"timeout":9999}|}
    "deadline-over-limit";
  expect_error "bad load spec"
    {|{"op":"load","id":11,"name":"x","spec":"cycle:-3"}|}
    "parse-error";
  (* Tiny fuel: the solver gives up, the server answers and survives. *)
  let r =
    Client.request c
      {|{"op":"game","id":12,"left":"c6","right":"c7","rounds":9,"fuel":1}|}
  in
  checks "starved game" "error" (status r);
  checks "starved code" "gave-up" (match code r with Some cd -> cd | None -> "<none>");
  (* Still alive after the whole gauntlet. *)
  checks "still serving" "ok" (status (Client.request c {|{"op":"ping","id":13}|}));
  let s = Server.stats srv in
  checkb "stats counted errors" true (s.Server.completed_error >= 7);
  checki "stats in-flight drained" 0 s.Server.in_flight;
  Client.close c

(* Single-tuple mutations through the wire: the RA engine's maintained
   plans must advance by delta propagation (a cache hit, not a rebuild)
   and keep agreeing with the compiled engine re-run from scratch. *)
let test_update_and_ra_eval () =
  with_server ~preload:[ ("g", "cycle:5") ] @@ fun srv port ->
  let c = Client.connect port in
  let result_field name resp =
    match field "result" resp with
    | Some (Json.Obj fields) -> List.assoc_opt name fields
    | _ -> Alcotest.failf "response without result object: %S" resp
  in
  let ra_q =
    {|{"op":"eval","id":1,"structure":"g","formula":"E(x,y)","ra":true}|}
  in
  let r = Client.request c ra_q in
  checks "ra eval" "ok" (status r);
  checkb "ra engine tag" true (result_field "engine" r = Some (Json.Str "ra"));
  checkb "ra count" true (result_field "count" r = Some (Json.Num 5.));
  (* Insert a chord. *)
  let r =
    Client.request c
      {|{"op":"update","id":2,"structure":"g","rel":"E","tuple":[0,2],"action":"insert"}|}
  in
  checks "update" "ok" (status r);
  checkb "update changed" true (result_field "changed" r = Some (Json.Bool true));
  let r = Client.request c ra_q in
  checkb "ra count after insert" true (result_field "count" r = Some (Json.Num 6.));
  let s = Server.stats srv in
  checkb "maintained plan hit, not rebuilt" true (s.Server.plan_hits >= 1);
  checkb "delta propagation recorded" true (s.Server.plans_maintained >= 1);
  (* The compiled engine, re-run from scratch, agrees. *)
  let r =
    Client.request c {|{"op":"eval","id":3,"structure":"g","formula":"E(x,y)"}|}
  in
  checkb "compiled count agrees" true (result_field "count" r = Some (Json.Num 6.));
  (* Inserting a present tuple is an acknowledged no-op. *)
  let r =
    Client.request c
      {|{"op":"update","id":4,"structure":"g","rel":"E","tuple":[0,2],"action":"insert"}|}
  in
  checks "idempotent insert" "ok" (status r);
  checkb "no-op flagged" true (result_field "changed" r = Some (Json.Bool false));
  (* Delete restores the original answer set. *)
  let r =
    Client.request c
      {|{"op":"update","id":5,"structure":"g","rel":"E","tuple":[0,2],"action":"delete"}|}
  in
  checks "delete" "ok" (status r);
  let r = Client.request c ra_q in
  checkb "ra count after delete" true (result_field "count" r = Some (Json.Num 5.));
  (* A sentence through the RA engine. *)
  let r =
    Client.request c
      {|{"op":"eval","id":6,"structure":"g","formula":"exists x. E(x,x)","ra":true}|}
  in
  checkb "ra sentence" true (result_field "value" r = Some (Json.Bool false));
  (* Validation surface: structured errors, connection keeps serving. *)
  let expect_error name line want =
    let r = Client.request c line in
    checks (name ^ " status") "error" (status r);
    checks (name ^ " code") want
      (match code r with Some cd -> cd | None -> "<none>")
  in
  expect_error "unknown structure"
    {|{"op":"update","id":7,"structure":"ghost","rel":"E","tuple":[0,1],"action":"insert"}|}
    "unknown-structure";
  expect_error "unknown relation"
    {|{"op":"update","id":8,"structure":"g","rel":"R","tuple":[0,1],"action":"insert"}|}
    "bad-update";
  expect_error "arity mismatch"
    {|{"op":"update","id":9,"structure":"g","rel":"E","tuple":[0,1,2],"action":"insert"}|}
    "bad-update";
  expect_error "out of domain"
    {|{"op":"update","id":10,"structure":"g","rel":"E","tuple":[0,99],"action":"insert"}|}
    "bad-update";
  expect_error "bad action"
    {|{"op":"update","id":11,"structure":"g","rel":"E","tuple":[0,1],"action":"upsert"}|}
    "bad-request";
  expect_error "bad tuple"
    {|{"op":"update","id":12,"structure":"g","rel":"E","tuple":[0,"x"],"action":"insert"}|}
    "bad-request";
  checks "still serving" "ok" (status (Client.request c {|{"op":"ping","id":13}|}));
  Client.close c

let test_oversized_line () =
  with_server ~configure:(fun c -> { c with Server.max_line = 256 }) @@ fun _ port ->
  let c = Client.connect port in
  let r = Client.request c (Printf.sprintf {|{"op":"ping","pad":"%s"}|} (String.make 400 'x')) in
  checks "oversized code" "oversized"
    (match code r with Some cd -> cd | None -> "<none>");
  checks "next request fine" "ok" (status (Client.request c {|{"op":"ping"}|}));
  Client.close c

let test_admission_shedding () =
  (* max_inflight 0: every pool request is shed, inline ops still work. *)
  with_server ~configure:(fun c -> { c with Server.max_inflight = 0 })
    ~preload:[ ("c6", "cycle:6") ]
  @@ fun srv port ->
  let c = Client.connect port in
  let r = Client.request c {|{"op":"eval","id":1,"structure":"c6","formula":"E(x,y)"}|} in
  checks "shed status" "shed" (status r);
  (match field "retry_after_ms" r with
  | Some (Json.Num ms) -> checkb "retry-after positive" true (ms > 0.)
  | _ -> Alcotest.fail "shed without retry_after_ms");
  checks "ping bypasses admission" "ok" (status (Client.request c {|{"op":"ping"}|}));
  let s = Server.stats srv in
  checkb "shed counted" true (s.Server.shed >= 1);
  Client.close c

let test_fault_injection_no_crash () =
  (* Every 10th-ish request gets an injected budget/worker fault; the
     server must answer every request (error for the faulted ones),
     never crash, and never flip a verdict on the clean ones. *)
  with_server
    ~configure:(fun c -> { c with Server.inject_faults = true; Server.workers = 2 })
    ~preload:[ ("c5", "cycle:5"); ("c6", "cycle:6") ]
  @@ fun srv port ->
  let c = Client.connect port in
  let n = 40 in
  (* Ground truth from the unlimited in-process solver: any definitive
     server answer must agree with it, faults or not. *)
  let truth =
    match Fmtk_games.Ef.solve_verdict ~rounds:3 (Gen.cycle 5) (Gen.cycle 6) with
    | Fmtk_games.Ef.Equivalent, _ -> true
    | Fmtk_games.Ef.Distinguished, _ -> false
    | Fmtk_games.Ef.Gave_up _, _ -> Alcotest.fail "unlimited solver gave up"
  in
  let statuses =
    List.init n (fun i ->
        let line =
          Printf.sprintf
            {|{"op":"game","id":%d,"left":"c5","right":"c6","rounds":3}|} i
        in
        let r = Client.request c line in
        (match (status r, field "result" r) with
        | ("ok" | "degraded"), Some (Json.Obj fields) -> (
            match List.assoc_opt "equivalent" fields with
            | Some (Json.Bool b) ->
                checkb "verdict never flips under faults" truth b
            | _ -> ())
        | _ -> ());
        status r)
  in
  let errors = List.length (List.filter (fun s -> s = "error") statuses) in
  let oks = List.length (List.filter (fun s -> s = "ok") statuses) in
  checkb "some requests were faulted" true (errors >= 3);
  checkb "most requests still answered" true (oks >= n / 2);
  (* The server survived the whole adversarial run. *)
  checks "alive after faults" "ok" (status (Client.request c {|{"op":"ping"}|}));
  let s = Server.stats srv in
  checki "nothing left in flight" 0 s.Server.in_flight;
  Client.close c

let test_graceful_shutdown_drains () =
  let c6 = "c6" in
  with_server ~preload:[ (c6, "cycle:6") ] @@ fun srv port ->
  let client = Client.connect port in
  (* Park a slow-ish request, then request shutdown while it runs. *)
  output_string client.Client.oc
    {|{"op":"decide","id":"slow","left":"c6","right":"c6","rank":3,"timeout":3}|};
  output_char client.Client.oc '\n';
  flush client.Client.oc;
  Thread.delay 0.05;
  Server.shutdown srv;
  (* The in-flight request still gets its one response line during the
     drain (it may be ok, degraded, or a cancelled gave-up — but never
     silence). *)
  (match input_line client.Client.ic with
  | line ->
      checkb "drained response is structured" true
        (match Json.parse line with Ok _ -> true | Error _ -> false)
  | exception End_of_file -> Alcotest.fail "connection dropped mid-drain");
  Client.close client

let test_pooled_workers_drain_and_park () =
  (* The server's worker domains come from the process-wide runtime
     pool. Two consecutive server lifecycles must answer correctly,
     drain cleanly, and — the regression this test exists for — the
     second server must reuse the domains the first one parked instead
     of spawning fresh ones. *)
  let module Pool = Fmtk_runtime.Pool in
  let pool = Pool.shared () in
  let run_once () =
    with_server ~preload:[ ("c6", "cycle:6"); ("c7", "cycle:7") ]
    @@ fun _srv port ->
    let c = Client.connect port in
    checks "pooled server answers" "ok"
      (status
         (Client.request c
            {|{"op":"game","id":1,"left":"c6","right":"c7","rounds":3}|}));
    Client.close c
  in
  run_once ();
  (* The first lifecycle has parked its workers back into the pool
     (this is the drain regression: a leaked or unjoined worker never
     parks), and an immediate spawn reuses one instead of creating a
     fresh domain. Joining the run only proves the jobs finished — the
     domains park a moment later, so give them a few naps. *)
  let rec await_park n =
    Pool.parked_count pool >= 1 || (n > 0 && (Pool.nap (); await_park (n - 1)))
  in
  checkb "workers parked after drain" true (await_park 100);
  let spawned_before = Pool.spawned_total pool in
  Pool.join (Pool.spawn pool (fun () -> ()));
  checkb "drained worker domain is reusable" true
    (Pool.spawned_total pool = spawned_before);
  (* A second lifecycle in the same process goes through the pool and
     drains just as cleanly. *)
  let dispatched_before = Pool.dispatched pool in
  run_once ();
  checkb "second server went through the pool" true
    (Pool.dispatched pool >= dispatched_before + 2)

let test_drop_end_to_end () =
  with_server ~preload:[ ("c6", "cycle:6") ] @@ fun _srv port ->
  let c = Client.connect port in
  let r = Client.request c {|{"op":"drop","id":1,"name":"c6"}|} in
  checks "drop acked" "ok" (status r);
  (match field "result" r with
  | Some (Json.Obj fields) ->
      checkb "drop result" true
        (List.assoc_opt "dropped" fields = Some (Json.Bool true))
  | _ -> Alcotest.fail "drop result shape");
  let r =
    Client.request c {|{"op":"eval","id":2,"structure":"c6","formula":"E(x,y)"}|}
  in
  checks "dropped structure unknown" "unknown-structure"
    (match code r with Some cd -> cd | None -> "<none>");
  let r = Client.request c {|{"op":"drop","id":3,"name":"c6"}|} in
  checks "double drop" "unknown-structure"
    (match code r with Some cd -> cd | None -> "<none>");
  (* Reloading the name must not serve stale compiled queries: the
     cache is invalidated on drop, so the count tracks the new value. *)
  ignore (Client.request c {|{"op":"load","id":4,"name":"c6","spec":"cycle:7"}|});
  let r =
    Client.request c {|{"op":"eval","id":5,"structure":"c6","formula":"E(x,y)"}|}
  in
  (match field "result" r with
  | Some (Json.Obj fields) ->
      checkb "fresh structure served" true
        (List.assoc_opt "count" fields = Some (Json.Num 7.))
  | _ -> Alcotest.fail "post-reload eval shape");
  Client.close c

let test_durable_server_restart () =
  with_tmp_dir @@ fun dir ->
  let configure c = { c with Server.data_dir = Some dir } in
  with_server ~configure (fun _srv port ->
      let c = Client.connect port in
      checks "load 1" "ok"
        (status
           (Client.request c {|{"op":"load","id":1,"name":"keep","spec":"cycle:6"}|}));
      checks "load 2" "ok"
        (status
           (Client.request c {|{"op":"load","id":2,"name":"gone","spec":"cycle:7"}|}));
      checks "drop" "ok"
        (status (Client.request c {|{"op":"drop","id":3,"name":"gone"}|}));
      Client.close c);
  (* Same data dir, new server lifecycle: recovery happens in create,
     before the socket binds. *)
  with_server ~configure (fun srv port ->
      let c = Client.connect port in
      let r = Client.request c {|{"op":"list","id":1}|} in
      (match field "result" r with
      | Some (Json.Obj fields) -> (
          match List.assoc_opt "structures" fields with
          | Some (Json.List [ Json.Obj entry ]) ->
              checkb "recovered name" true
                (List.assoc_opt "name" entry = Some (Json.Str "keep"))
          | _ -> Alcotest.fail "expected exactly the surviving structure")
      | _ -> Alcotest.fail "list shape");
      let s = Server.stats srv in
      (match s.Server.durability with
      | None -> Alcotest.fail "durable server without durability stats"
      | Some d ->
          checki "replayed the journal" 3 d.Store.recovered.Store.journal_records;
          checkb "stats name the dir" true (d.Store.data_dir = dir));
      (* The stats op surfaces the same numbers on the wire. *)
      let r = Client.request c {|{"op":"stats","id":2}|} in
      (match field "result" r with
      | Some (Json.Obj fields) ->
          checkb "wire stats carry recovery" true
            (List.assoc_opt "recovered_journal" fields = Some (Json.Num 3.))
      | _ -> Alcotest.fail "stats shape");
      Client.close c)

(* ---------- the kill -9 crash harness ---------- *)

(* Black-box torture: a real [fmtk serve --data-dir] process, a client
   hammering acknowledged loads/drops, SIGKILL at a random point (often
   with a request in flight), restart, verify. The invariants checked
   each cycle, accumulated across all cycles:

   - recovery never refuses (a kill can only tear the journal tail);
   - every acknowledged mutation survives, with the structure's
     canonical print byte-identical to what was loaded;
   - nothing else is visible: a name the harness never acked is either
     absent or holds exactly the value of the one in-flight request —
     a torn partial write must never surface as data.

   FMTK_CRASH_CYCLES picks the cycle count (default 5; CI runs 50). *)

let crash_cycles () =
  match Option.bind (Sys.getenv_opt "FMTK_CRASH_CYCLES") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> 5

let cli_exe () =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/fmtk_cli.exe"

let spawn_server ~sock ~dir =
  let exe = cli_exe () in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process exe
      [|
        exe; "serve"; "--socket"; sock; "--data-dir"; dir; "--sync"; "always";
        "--workers"; "1"; "--quiet";
      |]
      null null Unix.stderr
  in
  Unix.close null;
  pid

let connect_unix sock =
  let deadline = Unix.gettimeofday () +. 10. in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX sock) with
    | () ->
        {
          Client.fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
        }
    | exception Unix.Unix_error _ ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if Unix.gettimeofday () > deadline then
          Alcotest.fail "server did not come up"
        else begin
          Thread.delay 0.02;
          go ()
        end
  in
  go ()

let send_no_wait c line =
  output_string c.Client.oc line;
  output_char c.Client.oc '\n';
  flush c.Client.oc

let test_crash_harness () =
  with_tmp_dir @@ fun root ->
  let dir = Filename.concat root "data" in
  let sock = Filename.concat root "s.sock" in
  let rng = Random.State.make [| 0xD1CE; crash_cycles () |] in
  (* Ground truth. [exact]: names whose mutation was acked — value is
     the canonical print the recovered structure must match. [absent]:
     names whose drop was acked. [limbo]: the at-most-one in-flight
     mutation at kill time — (allowed print if present, old print if
     the mutation was a drop that may not have landed). *)
  let exact : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let absent : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let limbo = ref None in
  let gen_structure () =
    match Random.State.int rng 3 with
    | 0 -> Gen.cycle (3 + Random.State.int rng 40)
    | 1 -> Gen.random_graph ~rng (2 + Random.State.int rng 20) 0.3
    | _ -> Gen.linear_order (2 + Random.State.int rng 10)
  in
  let load_line name s =
    Json.to_string
      (Json.Obj
         [
           ("op", Json.Str "load");
           ("name", Json.Str name);
           ("text", Json.Str (Structure_io.to_string s));
         ])
  in
  let drop_line name =
    Json.to_string (Json.Obj [ ("op", Json.Str "drop"); ("name", Json.Str name) ])
  in
  let random_acked () =
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) exact [] in
    match keys with
    | [] -> None
    | ks -> Some (List.nth ks (Random.State.int rng (List.length ks)))
  in
  let cycles = crash_cycles () in
  for cycle = 1 to cycles do
    let pid = spawn_server ~sock ~dir in
    let c = connect_unix sock in
    (* The restarted server must already serve every exact name. *)
    let list_resp = Client.request c {|{"op":"list"}|} in
    let served =
      match field "result" list_resp with
      | Some (Json.Obj fields) -> (
          match List.assoc_opt "structures" fields with
          | Some (Json.List l) ->
              List.filter_map
                (function
                  | Json.Obj e -> (
                      match List.assoc_opt "name" e with
                      | Some (Json.Str n) -> Some n
                      | _ -> None)
                  | _ -> None)
                l
          | _ -> [])
      | _ -> []
    in
    Hashtbl.iter
      (fun name _ ->
        if not (List.mem name served) then
          Alcotest.failf "cycle %d: acked %s missing from restarted server"
            cycle name)
      exact;
    (* Burst of acked mutations, then SIGKILL — half the time with one
       request still in flight. *)
    let burst = 3 + Random.State.int rng 5 in
    for i = 1 to burst do
      let is_drop = Random.State.float rng 1.0 < 0.25 in
      match (is_drop, random_acked ()) with
      | true, Some name ->
          let r = Client.request c (drop_line name) in
          if status r = "ok" then begin
            Hashtbl.remove exact name;
            Hashtbl.replace absent name ()
          end
          else Alcotest.failf "cycle %d: drop %s failed: %s" cycle name r
      | _ ->
          let name = Printf.sprintf "s%d_%d" cycle i in
          let s = gen_structure () in
          let r = Client.request c (load_line name s) in
          if status r = "ok" then begin
            Hashtbl.replace exact name (Structure_io.to_string s);
            Hashtbl.remove absent name
          end
          else Alcotest.failf "cycle %d: load %s failed: %s" cycle name r
    done;
    (if Random.State.bool rng then
       (* Kill with a mutation in flight: acked-or-invisible is the
          contract under test. *)
       match (Random.State.float rng 1.0 < 0.3, random_acked ()) with
       | true, Some name ->
           let old = Hashtbl.find exact name in
           send_no_wait c (drop_line name);
           limbo := Some (name, `Dropped old)
       | _ ->
           let name = Printf.sprintf "s%d_limbo" cycle in
           let s = gen_structure () in
           send_no_wait c (load_line name s);
           limbo := Some (name, `Loaded (Structure_io.to_string s)));
    Unix.kill pid Sys.sigkill;
    ignore (Unix.waitpid [] pid);
    Client.close c;
    (* In-process verification against the raw data dir: recovery must
       succeed and reconstruct exactly the acked state (mod limbo). *)
    let st =
      match Store.open_durable ~dir () with
      | Ok (st, _) -> st
      | Error e -> Alcotest.failf "cycle %d: recovery refused: %s" cycle e
    in
    let limbo_name = match !limbo with Some (l, _) -> Some l | None -> None in
    Hashtbl.iter
      (fun name expected ->
        (* The limbo name's fate is resolved separately below — an
           in-flight drop of an acked name may legitimately have
           landed. *)
        if Some name <> limbo_name then
          match Store.get st name with
          | None -> Alcotest.failf "cycle %d: acked %s lost" cycle name
          | Some s ->
              if Structure_io.to_string s <> expected then
                Alcotest.failf "cycle %d: acked %s recovered differently" cycle
                  name)
      exact;
    Hashtbl.iter
      (fun name () ->
        match !limbo with
        | Some (lname, _) when lname = name -> ()
        | _ ->
            if Store.get st name <> None then
              Alcotest.failf "cycle %d: acked drop of %s resurfaced" cycle name)
      absent;
    (* Anything else visible must be the single in-flight mutation,
       recovered whole — and its observed state becomes ground truth. *)
    List.iter
      (fun (name, _) ->
        let in_limbo =
          match !limbo with Some (l, _) -> l = name | None -> false
        in
        if
          (not (Hashtbl.mem exact name))
          && not in_limbo
        then Alcotest.failf "cycle %d: unacked name %s surfaced" cycle name)
      (Store.names st);
    (match !limbo with
    | None -> ()
    | Some (name, `Loaded expected) -> (
        match Store.get st name with
        | None -> () (* the in-flight load never landed — fine *)
        | Some s ->
            if Structure_io.to_string s <> expected then
              Alcotest.failf "cycle %d: in-flight %s surfaced torn" cycle name
            else Hashtbl.replace exact name expected)
    | Some (name, `Dropped old) -> (
        match Store.get st name with
        | None ->
            (* the in-flight drop landed *)
            Hashtbl.remove exact name;
            Hashtbl.replace absent name ()
        | Some s ->
            if Structure_io.to_string s <> old then
              Alcotest.failf "cycle %d: half-dropped %s mangled" cycle name
            else Hashtbl.replace exact name old));
    limbo := None;
    Store.close st
  done;
  checkb "harness accumulated state" true (Hashtbl.length exact > 0)

let () =
  Alcotest.run "fmtk_server"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "totality" `Quick test_json_totality;
        ] );
      ("protocol", [ Alcotest.test_case "parse" `Quick test_protocol_parse ]);
      ( "store",
        [
          Alcotest.test_case "bounds" `Quick test_store;
          Alcotest.test_case "single-tuple update" `Quick test_store_update;
        ] );
      ( "journal",
        [
          Alcotest.test_case "round-trip" `Quick test_journal_roundtrip;
          Alcotest.test_case "structure forms" `Quick
            test_journal_structure_forms;
          Alcotest.test_case "truncation corpus" `Quick
            test_journal_truncation_corpus;
          Alcotest.test_case "flipped-byte corpus" `Quick
            test_journal_flip_corpus;
          QCheck_alcotest.to_alcotest prop_journal_records_roundtrip;
          QCheck_alcotest.to_alcotest prop_journal_structures_roundtrip;
        ] );
      ( "durable",
        [
          Alcotest.test_case "recovery" `Quick test_store_recovery;
          Alcotest.test_case "torn write" `Quick test_store_torn_write;
          Alcotest.test_case "crash points" `Quick test_store_crash_points;
          Alcotest.test_case "compaction" `Quick test_store_compaction;
          Alcotest.test_case "corrupt refusal" `Quick
            test_store_corrupt_refusal;
        ] );
      ("qcache", [ Alcotest.test_case "tiers" `Quick test_qcache ]);
      ( "pcache",
        [ Alcotest.test_case "delta ordering" `Quick test_pcache_ordering ] );
      ( "serve",
        [
          Alcotest.test_case "end-to-end" `Quick test_end_to_end;
          Alcotest.test_case "update + ra eval" `Quick test_update_and_ra_eval;
          Alcotest.test_case "drop" `Quick test_drop_end_to_end;
          Alcotest.test_case "durable restart" `Quick
            test_durable_server_restart;
          Alcotest.test_case "oversized line" `Quick test_oversized_line;
          Alcotest.test_case "admission shedding" `Quick test_admission_shedding;
          Alcotest.test_case "fault injection" `Quick test_fault_injection_no_crash;
          Alcotest.test_case "shutdown drains" `Quick test_graceful_shutdown_drains;
          Alcotest.test_case "pooled workers drain and park" `Quick
            test_pooled_workers_drain_and_park;
        ] );
      ( "crash",
        [ Alcotest.test_case "kill -9 recovery" `Quick test_crash_harness ] );
    ]
