(* Serve-layer tests: the total JSON codec, the wire protocol, the
   structure store, the compiled-query cache, and in-process end-to-end
   runs of the full server — including admission-control shedding,
   fault-injected requests, and the graceful-shutdown drain.

   End-to-end tests bind a TCP listener on 127.0.0.1 port 0 (the kernel
   picks a free port) and run the accept loop on a POSIX thread, so the
   whole suite works inside an unprivileged sandbox. *)

module Json = Fmtk_server.Json
module Protocol = Fmtk_server.Protocol
module Store = Fmtk_server.Store
module Qcache = Fmtk_server.Qcache
module Server = Fmtk_server.Server
module Budget = Fmtk_runtime.Budget
module Gen = Fmtk_structure.Gen
module Structure = Fmtk_structure.Structure
module Signature = Fmtk_logic.Signature
module Parser = Fmtk_logic.Parser

let checkb msg = Alcotest.check Alcotest.bool msg
let checks msg = Alcotest.check Alcotest.string msg
let checki msg = Alcotest.check Alcotest.int msg

(* ---------- JSON codec ---------- *)

let test_json_roundtrip () =
  let docs =
    [
      "null";
      "true";
      "[1,2,3]";
      {|{"a":1,"b":[true,null,"x"],"c":{"d":-2.5}}|};
      {|"\u00e9\u0041\ud83d\ude00"|};
      (* astral plane via surrogate pair *)
      {|{"nested":[[[{"deep":[1]}]]],"s":"a\"b\\c\nd"}|};
      "-0.5";
      "1e3";
      "[]";
      "{}";
    ]
  in
  List.iter
    (fun doc ->
      match Json.parse doc with
      | Error e -> Alcotest.failf "valid doc %S rejected: %s" doc e
      | Ok v -> (
          let printed = Json.to_string v in
          match Json.parse printed with
          | Error e -> Alcotest.failf "printed form %S rejected: %s" printed e
          | Ok v' ->
              checkb (Printf.sprintf "round-trip %S" doc) true (v = v')))
    docs;
  (* Integral floats print as ints; one line, no control chars. *)
  checks "int print" "42" (Json.to_string (Json.Num 42.));
  checks "escape print" {|"a\nb"|} (Json.to_string (Json.Str "a\nb"));
  checkb "single line" true
    (not (String.contains (Json.to_string (Json.Obj [ ("k", Json.Str "v\n") ])) '\n'))

let test_json_totality () =
  let bad =
    [
      "";
      "   ";
      "{";
      "}";
      "[1,2";
      "[1 2]";
      {|{"a"}|};
      {|{"a":}|};
      {|{a:1}|};
      "tru";
      "nulll?";
      "+5";
      "0x10";
      "1.";
      ".5";
      "1e";
      "\"unterminated";
      "\"bad \\q escape\"";
      "\"ctrl \x01 char\"";
      "\"lone surrogate \\ud800\"";
      "[1],[2]";
      "{} trailing";
      String.make 300 '[' (* past max_depth *);
    ]
  in
  List.iter
    (fun doc ->
      match Json.parse doc with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "malformed doc %S accepted" doc)
    bad;
  (* Random garbage never raises. *)
  let rng = Random.State.make [| 77 |] in
  for _ = 1 to 500 do
    let n = Random.State.int rng 40 in
    let s = String.init n (fun _ -> Char.chr (Random.State.int rng 256)) in
    match Json.parse s with Ok _ | Error _ -> ()
  done;
  (* Depth limit is a parameter. *)
  (match Json.parse ~max_depth:2 "[[[1]]]" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "depth limit ignored");
  match Json.parse ~max_depth:4 "[[[1]]]" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "shallow doc rejected: %s" e

(* ---------- protocol ---------- *)

let body_code env =
  match env.Protocol.body with
  | Error (code, _) -> Some code
  | Ok _ -> None

let test_protocol_parse () =
  (* Well-formed requests of every op. *)
  let ok line =
    match (Protocol.parse_request line).Protocol.body with
    | Ok (req, limits) -> (req, limits)
    | Error (c, m) -> Alcotest.failf "%S rejected: %s %s" line c m
  in
  (match ok {|{"op":"ping","id":1}|} with
  | Protocol.Ping, _ -> ()
  | _ -> Alcotest.fail "ping misparsed");
  (match ok {|{"op":"load","name":"c","spec":"cycle:6"}|} with
  | Protocol.Load { name = "c"; spec = Some "cycle:6"; text = None }, _ -> ()
  | _ -> Alcotest.fail "load misparsed");
  (match ok {|{"op":"eval","structure":"c","formula":"E(x,y)","timeout":1.5,"fuel":100}|} with
  | Protocol.Eval { structure = "c"; formula = "E(x,y)" }, l ->
      checkb "timeout" true (l.Protocol.timeout = Some 1.5);
      checkb "fuel" true (l.Protocol.fuel = Some 100)
  | _ -> Alcotest.fail "eval misparsed");
  (match ok {|{"op":"game","left":"a","right":"b","rounds":3,"pebbles":2,"counting":true}|} with
  | Protocol.Game { rounds = 3; pebbles = Some 2; counting = true; _ }, _ -> ()
  | _ -> Alcotest.fail "game misparsed");
  (match ok {|{"op":"decide","left":"a","right":"b","rank":4}|} with
  | Protocol.Decide { rank = 4; _ }, _ -> ()
  | _ -> Alcotest.fail "decide misparsed");
  (* Inline classification. *)
  checkb "ping inline" true (Protocol.is_inline Protocol.Ping);
  checkb "stats inline" true (Protocol.is_inline Protocol.Stats);
  checkb "decide pooled" false
    (Protocol.is_inline (Protocol.Decide { left = "a"; right = "b"; rank = 1 }));
  (* Malformed bodies keep the id and name a code. *)
  let env = Protocol.parse_request {|{"op":"nope","id":7}|} in
  checkb "unknown op id echoed" true (env.Protocol.id = Some (Json.Num 7.));
  checkb "unknown op code" true (body_code env = Some "bad-request");
  checkb "bad json code" true
    (body_code (Protocol.parse_request "{oops") = Some "bad-json");
  checkb "non-object code" true
    (body_code (Protocol.parse_request "[1,2]") = Some "bad-request");
  checkb "missing field code" true
    (body_code (Protocol.parse_request {|{"op":"eval","structure":"c"}|})
    = Some "bad-request");
  checkb "wrong type code" true
    (body_code
       (Protocol.parse_request {|{"op":"decide","left":"a","right":"b","rank":"x"}|})
    = Some "bad-request");
  (* Responses are valid single-line JSON echoing the id. *)
  let line = Protocol.ok ~ms:1.25 ~id:(Some (Json.Str "r1")) [ ("x", Json.of_int 1) ] in
  (match Json.parse line with
  | Ok v ->
      checkb "ok status" true (Json.member "status" v = Some (Json.Str "ok"));
      checkb "ok id" true (Json.member "id" v = Some (Json.Str "r1"))
  | Error e -> Alcotest.failf "ok line unparseable: %s" e);
  match Json.parse (Protocol.shed ~id:None ~retry_after_ms:50) with
  | Ok v ->
      checkb "shed status" true
        (Json.member "status" v = Some (Json.Str "shed"));
      checkb "shed code" true
        (Json.member "code" v = Some (Json.Str "overloaded"))
  | Error e -> Alcotest.failf "shed line unparseable: %s" e

(* ---------- store ---------- *)

let test_store () =
  let st = Store.create ~capacity:2 ~max_size:10 () in
  checkb "put" true (Store.put st ~name:"a" (Gen.cycle 3) = Ok ());
  checkb "get" true (Store.get st "a" <> None);
  checkb "get missing" true (Store.get st "zzz" = None);
  (* Rebinding an existing name is allowed even at capacity. *)
  checkb "put b" true (Store.put st ~name:"b" (Gen.cycle 4) = Ok ());
  checkb "rebind at capacity" true (Store.put st ~name:"a" (Gen.cycle 5) = Ok ());
  checkb "rebind took" true
    (match Store.get st "a" with
    | Some s -> Structure.size s = 5
    | None -> false);
  (* Fresh names past capacity and oversized structures are refused. *)
  checkb "store full" true
    (match Store.put st ~name:"c" (Gen.cycle 3) with Error _ -> true | Ok () -> false);
  checkb "oversized" true
    (match Store.put st ~name:"a" (Gen.cycle 11) with Error _ -> true | Ok () -> false);
  checki "count" 2 (Store.count st);
  checki "names" 2 (List.length (Store.names st))

(* ---------- query cache ---------- *)

let test_qcache () =
  let qc = Qcache.create ~capacity:8 () in
  let c6 = Gen.cycle 6 in
  let sg = Structure.signature c6 in
  (* Parse tier: same text parses once, bad text is a cached Error. *)
  (match Qcache.formula qc sg "exists x. exists y. E(x,y)" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Qcache.formula qc sg "exists x. (" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad formula accepted");
  (* Validation: relations must exist in the signature with the right
     arity. *)
  (match Qcache.formula qc sg "exists x. R(x)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown relation accepted");
  (match Qcache.formula qc sg "exists x. E(x)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong arity accepted");
  (* Compiled tier: second probe with the same (name, text, structure)
     hits; rebinding the name invalidates. *)
  let text = "exists x. exists y. E(x,y)" in
  let phi =
    match Qcache.formula qc sg text with Ok f -> f | Error e -> Alcotest.fail e
  in
  let run s = Qcache.with_compiled qc ~sname:"c" s text phi (fun _ -> ()) in
  run c6;
  checki "first probe misses" 0 (Qcache.hits qc);
  run c6;
  checki "second probe hits" 1 (Qcache.hits qc);
  (* A different structure under the same name must not reuse the old
     closure (compiled closures capture the structure's indexes). *)
  Qcache.invalidate qc ~sname:"c";
  let c7 = Gen.cycle 7 in
  let seen = ref (-1) in
  Qcache.with_compiled qc ~sname:"c" c7 text phi (fun _ -> seen := Structure.size c7);
  checki "rebind recompiles against the new structure" 7 !seen;
  checkb "rebind was a miss" true (Qcache.misses qc >= 2)

(* ---------- end-to-end ---------- *)

(* A tiny blocking client for the line protocol. *)
module Client = struct
  type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

  let connect port =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

  let request t line =
    output_string t.oc line;
    output_char t.oc '\n';
    flush t.oc;
    input_line t.ic

  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
end

let with_server ?(configure = fun c -> c) ?preload f =
  let cfg =
    configure
      {
        (Server.default_config (Server.Tcp ("127.0.0.1", 0))) with
        Server.workers = 2;
        log = None;
      }
  in
  let srv =
    match Server.create ?preload cfg with
    | Ok s -> s
    | Error e -> Alcotest.failf "server create failed: %s" e
  in
  let runner = Thread.create Server.run srv in
  let port = match Server.port srv with Some p -> p | None -> Alcotest.fail "no port" in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown srv;
      Thread.join runner)
    (fun () -> f srv port)

let field name resp =
  match Json.parse resp with
  | Ok v -> Json.member name v
  | Error e -> Alcotest.failf "unparseable response %S: %s" resp e

let status resp =
  match field "status" resp with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.failf "response without status: %S" resp

let code resp =
  match field "code" resp with Some (Json.Str s) -> Some s | _ -> None

let test_end_to_end () =
  with_server ~preload:[ ("c6", "cycle:6") ] @@ fun srv port ->
  let c = Client.connect port in
  checks "ping" "ok" (status (Client.request c {|{"op":"ping","id":1}|}));
  checks "load" "ok"
    (status (Client.request c {|{"op":"load","id":2,"name":"c7","spec":"cycle:7"}|}));
  (* Sentence evaluation, repeated: second time must hit the cache. *)
  let q = {|{"op":"eval","id":3,"structure":"c6","formula":"forall x. exists y. E(x,y)"}|} in
  let r = Client.request c q in
  checks "eval" "ok" (status r);
  (match field "result" r with
  | Some (Json.Obj fields) ->
      checkb "eval value" true (List.assoc_opt "value" fields = Some (Json.Bool true))
  | _ -> Alcotest.fail "eval result shape");
  ignore (Client.request c q);
  let s = Server.stats srv in
  checkb "cache hit recorded" true (s.Server.cache_hits > 0);
  (* Free-variable query returns bindings. *)
  let r = Client.request c {|{"op":"eval","id":4,"structure":"c6","formula":"E(x,y)"}|} in
  (match field "result" r with
  | Some (Json.Obj fields) ->
      checkb "answer count" true (List.assoc_opt "count" fields = Some (Json.Num 6.))
  | _ -> Alcotest.fail "answers shape");
  (* Games and the decide ladder. *)
  let r = Client.request c {|{"op":"game","id":5,"left":"c6","right":"c7","rounds":3}|} in
  checks "game" "ok" (status r);
  let r = Client.request c {|{"op":"decide","id":6,"left":"c6","right":"c7","rank":3}|} in
  checkb "decide answers" true (status r = "ok" || status r = "degraded");
  (* The failure surface: each bad input gets a structured error and the
     connection keeps serving. *)
  let expect_error name line want =
    let r = Client.request c line in
    checks (name ^ " status") "error" (status r);
    checks (name ^ " code") want
      (match code r with Some cd -> cd | None -> "<none>")
  in
  expect_error "bad json" "{nope" "bad-json";
  expect_error "bad request" {|{"op":"warp"}|} "bad-request";
  expect_error "unknown structure"
    {|{"op":"eval","id":8,"structure":"ghost","formula":"E(x,y)"}|}
    "unknown-structure";
  expect_error "parse error"
    {|{"op":"eval","id":9,"structure":"c6","formula":"exists x. ("}|}
    "parse-error";
  expect_error "over-limit deadline"
    {|{"op":"decide","id":10,"left":"c6","right":"c7","rank":3,"timeout":9999}|}
    "deadline-over-limit";
  expect_error "bad load spec"
    {|{"op":"load","id":11,"name":"x","spec":"cycle:-3"}|}
    "parse-error";
  (* Tiny fuel: the solver gives up, the server answers and survives. *)
  let r =
    Client.request c
      {|{"op":"game","id":12,"left":"c6","right":"c7","rounds":9,"fuel":1}|}
  in
  checks "starved game" "error" (status r);
  checks "starved code" "gave-up" (match code r with Some cd -> cd | None -> "<none>");
  (* Still alive after the whole gauntlet. *)
  checks "still serving" "ok" (status (Client.request c {|{"op":"ping","id":13}|}));
  let s = Server.stats srv in
  checkb "stats counted errors" true (s.Server.completed_error >= 7);
  checki "stats in-flight drained" 0 s.Server.in_flight;
  Client.close c

let test_oversized_line () =
  with_server ~configure:(fun c -> { c with Server.max_line = 256 }) @@ fun _ port ->
  let c = Client.connect port in
  let r = Client.request c (Printf.sprintf {|{"op":"ping","pad":"%s"}|} (String.make 400 'x')) in
  checks "oversized code" "oversized"
    (match code r with Some cd -> cd | None -> "<none>");
  checks "next request fine" "ok" (status (Client.request c {|{"op":"ping"}|}));
  Client.close c

let test_admission_shedding () =
  (* max_inflight 0: every pool request is shed, inline ops still work. *)
  with_server ~configure:(fun c -> { c with Server.max_inflight = 0 })
    ~preload:[ ("c6", "cycle:6") ]
  @@ fun srv port ->
  let c = Client.connect port in
  let r = Client.request c {|{"op":"eval","id":1,"structure":"c6","formula":"E(x,y)"}|} in
  checks "shed status" "shed" (status r);
  (match field "retry_after_ms" r with
  | Some (Json.Num ms) -> checkb "retry-after positive" true (ms > 0.)
  | _ -> Alcotest.fail "shed without retry_after_ms");
  checks "ping bypasses admission" "ok" (status (Client.request c {|{"op":"ping"}|}));
  let s = Server.stats srv in
  checkb "shed counted" true (s.Server.shed >= 1);
  Client.close c

let test_fault_injection_no_crash () =
  (* Every 10th-ish request gets an injected budget/worker fault; the
     server must answer every request (error for the faulted ones),
     never crash, and never flip a verdict on the clean ones. *)
  with_server
    ~configure:(fun c -> { c with Server.inject_faults = true; Server.workers = 2 })
    ~preload:[ ("c5", "cycle:5"); ("c6", "cycle:6") ]
  @@ fun srv port ->
  let c = Client.connect port in
  let n = 40 in
  (* Ground truth from the unlimited in-process solver: any definitive
     server answer must agree with it, faults or not. *)
  let truth =
    match Fmtk_games.Ef.solve_verdict ~rounds:3 (Gen.cycle 5) (Gen.cycle 6) with
    | Fmtk_games.Ef.Equivalent, _ -> true
    | Fmtk_games.Ef.Distinguished, _ -> false
    | Fmtk_games.Ef.Gave_up _, _ -> Alcotest.fail "unlimited solver gave up"
  in
  let statuses =
    List.init n (fun i ->
        let line =
          Printf.sprintf
            {|{"op":"game","id":%d,"left":"c5","right":"c6","rounds":3}|} i
        in
        let r = Client.request c line in
        (match (status r, field "result" r) with
        | ("ok" | "degraded"), Some (Json.Obj fields) -> (
            match List.assoc_opt "equivalent" fields with
            | Some (Json.Bool b) ->
                checkb "verdict never flips under faults" truth b
            | _ -> ())
        | _ -> ());
        status r)
  in
  let errors = List.length (List.filter (fun s -> s = "error") statuses) in
  let oks = List.length (List.filter (fun s -> s = "ok") statuses) in
  checkb "some requests were faulted" true (errors >= 3);
  checkb "most requests still answered" true (oks >= n / 2);
  (* The server survived the whole adversarial run. *)
  checks "alive after faults" "ok" (status (Client.request c {|{"op":"ping"}|}));
  let s = Server.stats srv in
  checki "nothing left in flight" 0 s.Server.in_flight;
  Client.close c

let test_graceful_shutdown_drains () =
  let c6 = "c6" in
  with_server ~preload:[ (c6, "cycle:6") ] @@ fun srv port ->
  let client = Client.connect port in
  (* Park a slow-ish request, then request shutdown while it runs. *)
  output_string client.Client.oc
    {|{"op":"decide","id":"slow","left":"c6","right":"c6","rank":3,"timeout":3}|};
  output_char client.Client.oc '\n';
  flush client.Client.oc;
  Thread.delay 0.05;
  Server.shutdown srv;
  (* The in-flight request still gets its one response line during the
     drain (it may be ok, degraded, or a cancelled gave-up — but never
     silence). *)
  (match input_line client.Client.ic with
  | line ->
      checkb "drained response is structured" true
        (match Json.parse line with Ok _ -> true | Error _ -> false)
  | exception End_of_file -> Alcotest.fail "connection dropped mid-drain");
  Client.close client

let test_pooled_workers_drain_and_park () =
  (* The server's worker domains come from the process-wide runtime
     pool. Two consecutive server lifecycles must answer correctly,
     drain cleanly, and — the regression this test exists for — the
     second server must reuse the domains the first one parked instead
     of spawning fresh ones. *)
  let module Pool = Fmtk_runtime.Pool in
  let pool = Pool.shared () in
  let run_once () =
    with_server ~preload:[ ("c6", "cycle:6"); ("c7", "cycle:7") ]
    @@ fun _srv port ->
    let c = Client.connect port in
    checks "pooled server answers" "ok"
      (status
         (Client.request c
            {|{"op":"game","id":1,"left":"c6","right":"c7","rounds":3}|}));
    Client.close c
  in
  run_once ();
  (* The first lifecycle has parked its workers back into the pool
     (this is the drain regression: a leaked or unjoined worker never
     parks), and an immediate spawn reuses one instead of creating a
     fresh domain. Joining the run only proves the jobs finished — the
     domains park a moment later, so give them a few naps. *)
  let rec await_park n =
    Pool.parked_count pool >= 1 || (n > 0 && (Pool.nap (); await_park (n - 1)))
  in
  checkb "workers parked after drain" true (await_park 100);
  let spawned_before = Pool.spawned_total pool in
  Pool.join (Pool.spawn pool (fun () -> ()));
  checkb "drained worker domain is reusable" true
    (Pool.spawned_total pool = spawned_before);
  (* A second lifecycle in the same process goes through the pool and
     drains just as cleanly. *)
  let dispatched_before = Pool.dispatched pool in
  run_once ();
  checkb "second server went through the pool" true
    (Pool.dispatched pool >= dispatched_before + 2)

let () =
  Alcotest.run "fmtk_server"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "totality" `Quick test_json_totality;
        ] );
      ("protocol", [ Alcotest.test_case "parse" `Quick test_protocol_parse ]);
      ("store", [ Alcotest.test_case "bounds" `Quick test_store ]);
      ("qcache", [ Alcotest.test_case "tiers" `Quick test_qcache ]);
      ( "serve",
        [
          Alcotest.test_case "end-to-end" `Quick test_end_to_end;
          Alcotest.test_case "oversized line" `Quick test_oversized_line;
          Alcotest.test_case "admission shedding" `Quick test_admission_shedding;
          Alcotest.test_case "fault injection" `Quick test_fault_injection_no_crash;
          Alcotest.test_case "shutdown drains" `Quick test_graceful_shutdown_drains;
          Alcotest.test_case "pooled workers drain and park" `Quick
            test_pooled_workers_drain_and_park;
        ] );
    ]
