(* Differential tests for the cost-based planner pipeline: the planned
   physical engine, the naive algebra interpreter, the compiled
   tree-walking evaluator and the recursive evaluator must all agree on
   random formula/structure pairs; delta-maintained materializations
   must track full re-evaluation under random insert/delete streams; and
   an injected budget fault may only ever produce a clean give-up, never
   a wrong answer. *)

module Signature = Fmtk_logic.Signature
module Formula = Fmtk_logic.Formula
module Term = Fmtk_logic.Term
module Parser = Fmtk_logic.Parser
module Structure = Fmtk_structure.Structure
module Tuple = Fmtk_structure.Tuple
module Gen = Fmtk_structure.Gen
module Eval = Fmtk_eval.Eval
module Compiled = Fmtk_eval.Compiled
module Algebra = Fmtk_db.Algebra
module Compile = Fmtk_db.Compile
module Planner = Fmtk_db.Planner
module Physical = Fmtk_db.Physical
module Delta = Fmtk_db.Delta
module Relation = Fmtk_db.Relation
module Budget = Fmtk_runtime.Budget

let checkb msg = Alcotest.check Alcotest.bool msg
let f = Parser.parse_exn

(* ---------- generators ---------- *)

let sg = Signature.make [ ("E", 2); ("P", 1) ]

let gen_structure =
  let open QCheck2.Gen in
  let* n = int_range 1 5 in
  let* edges =
    list_size (int_range 0 (2 * n))
      (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
  in
  let* ps = list_size (int_range 0 n) (int_range 0 (n - 1)) in
  return
    (Structure.make sg ~size:n
       [
         ("E", List.map (fun (u, v) -> [| u; v |]) edges);
         ("P", List.map (fun p -> [| p |]) ps);
       ])

let gen_var = QCheck2.Gen.oneofl [ "x"; "y"; "z"; "w" ]

let gen_formula =
  let open QCheck2.Gen in
  let atom =
    oneof
      [
        (let* x = gen_var and* y = gen_var in
         return (Formula.Rel ("E", [ Term.Var x; Term.Var y ])));
        (let* x = gen_var in
         return (Formula.Rel ("P", [ Term.Var x ])));
        (let* x = gen_var and* y = gen_var in
         return (Formula.Eq (Term.Var x, Term.Var y)));
      ]
  in
  sized_size (int_range 0 7)
  @@ fix (fun self n ->
         if n <= 0 then atom
         else
           oneof
             [
               atom;
               map (fun a -> Formula.Not a) (self (n - 1));
               (let* a = self (n / 2) and* b = self (n / 2) in
                return (Formula.And (a, b)));
               (let* a = self (n / 2) and* b = self (n / 2) in
                return (Formula.Or (a, b)));
               (let* a = self (n / 2) and* b = self (n / 2) in
                return (Formula.Implies (a, b)));
               (let* x = gen_var and* a = self (n - 1) in
                return (Formula.Exists (x, a)));
               (let* x = gen_var and* a = self (n - 1) in
                return (Formula.Forall (x, a)));
             ])

(* ---------- planned vs three independent oracles ---------- *)

let prop_planned_matches_oracles =
  QCheck2.Test.make ~count:500 ~name:"planned = naive = compiled = direct"
    QCheck2.Gen.(pair gen_structure gen_formula)
    (fun (s, phi) ->
      let fv = Formula.free_vars phi in
      let planned =
        match Compile.answers_any s phi with
        | Ok (_, ts) -> ts
        | Error (`Msg m) -> QCheck2.Test.fail_reportf "planner: %s" m
      in
      let naive =
        match Compile.answers_naive s phi with
        | Ok (_, ts) -> ts
        | Error (`Msg m) -> QCheck2.Test.fail_reportf "naive: %s" m
      in
      let direct = Eval.definable_relation s phi ~vars:fv in
      let compiled =
        Compiled.definable_relation_of (Compiled.compile_with s ~vars:fv phi)
      in
      Tuple.Set.equal planned naive
      && Tuple.Set.equal planned direct
      && Tuple.Set.equal planned compiled)

(* The logical rewriter alone preserves semantics under the naive
   interpreter (so a planner win can never come from changing the
   question). *)
let prop_rewrite_preserves_semantics =
  QCheck2.Test.make ~count:300 ~name:"rewrite preserves Algebra.eval"
    QCheck2.Gen.(pair gen_structure gen_formula)
    (fun (s, phi) ->
      let db = Algebra.Database.of_structure s in
      let e =
        Algebra.Project (Formula.free_vars phi, Compile.compile phi)
      in
      let r0 =
        match Algebra.eval db e with
        | Ok r -> r
        | Error m -> QCheck2.Test.fail_reportf "eval: %s" m
      in
      let r1 =
        match Algebra.eval db (Planner.rewrite db e) with
        | Ok r -> r
        | Error m -> QCheck2.Test.fail_reportf "eval (rewritten): %s" m
      in
      Relation.attrs r0 = Relation.attrs r1
      && Tuple.Set.equal (Relation.tuples r0) (Relation.tuples r1))

(* ---------- delta maintenance vs full re-evaluation ---------- *)

let delta_formulas =
  List.map f
    [
      "E(x,y) & E(y,z)";
      "E(x,y) & !E(y,x)";
      "exists z. E(x,z) & E(z,y)";
      "P(x) & E(x,y)";
      "E(x,y) | E(y,x)";
      "forall y. E(x,y) -> P(y)";
      "!(exists y. E(x,y))";
    ]

let apply_structure s rel tup add =
  let cur = Structure.rel s rel in
  let tuples =
    if add then Tuple.Set.add tup cur else Tuple.Set.remove tup cur
  in
  Structure.with_rel s rel (Array.length tup) tuples

let gen_update n =
  let open QCheck2.Gen in
  let* add = bool in
  let* rel = oneofl [ "E"; "P" ] in
  let* tup =
    if rel = "E" then
      map
        (fun (u, v) -> [| u; v |])
        (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    else map (fun u -> [| u |]) (int_range 0 (n - 1))
  in
  return (rel, tup, add)

let prop_delta_tracks_recompute =
  QCheck2.Test.make ~count:60
    ~name:"delta-maintained = recomputed under insert/delete streams"
    QCheck2.Gen.(
      let* s = gen_structure in
      let* phi = oneofl delta_formulas in
      let* ups = list_size (int_range 1 40) (gen_update (Structure.size s)) in
      return (s, phi, ups))
    (fun (s, phi, ups) ->
      let fv = Formula.free_vars phi in
      let e = Algebra.Project (fv, Compile.compile phi) in
      let db = Algebra.Database.of_structure s in
      let d =
        match Delta.materialize db e with
        | Ok d -> d
        | Error m -> QCheck2.Test.fail_reportf "materialize: %s" m
      in
      let mirror = ref s in
      let step = ref 0 in
      List.for_all
        (fun (rel, tup, add) ->
          (match Delta.update d ~rel tup ~add with
          | Ok () -> ()
          | Error m -> QCheck2.Test.fail_reportf "delta update: %s" m);
          mirror := apply_structure !mirror rel tup add;
          incr step;
          (* compare every few steps and always on the last one *)
          !step mod 5 <> 0
          ||
          let maintained = Relation.tuples (Delta.result d) in
          let fresh =
            match Compile.answers_naive !mirror phi with
            | Ok (_, ts) -> ts
            | Error (`Msg m) -> QCheck2.Test.fail_reportf "naive: %s" m
          in
          Tuple.Set.equal maintained fresh)
        ups
      &&
      let maintained = Relation.tuples (Delta.result d) in
      let fresh =
        match Compile.answers_naive !mirror phi with
        | Ok (_, ts) -> ts
        | Error (`Msg m) -> QCheck2.Test.fail_reportf "naive: %s" m
      in
      Tuple.Set.equal maintained fresh)

(* ---------- budget fault injection: clean give-ups only ---------- *)

let fault_structure =
  Structure.make sg ~size:5
    [
      ("E", [ [| 0; 1 |]; [| 1; 2 |]; [| 2; 3 |]; [| 3; 4 |]; [| 4; 0 |]; [| 0; 2 |] ]);
      ("P", [ [| 1 |]; [| 3 |] ]);
    ]

let test_budget_fault_injection () =
  let phis =
    List.map f
      [
        "E(x,y) & E(y,z)";
        "exists z. E(x,z) & E(z,y)";
        "E(x,y) & !E(y,x)";
        "forall y. E(x,y) -> P(y)";
      ]
  in
  List.iter
    (fun phi ->
      let oracle =
        match Compile.answers_naive fault_structure phi with
        | Ok (_, ts) -> ts
        | Error (`Msg m) -> Alcotest.fail m
      in
      for n = 1 to 30 do
        let budget = Budget.create ~inject:(Budget.Exhaust_at n) () in
        match Compile.answers_any ~budget fault_structure phi with
        | Ok (_, ts) ->
            checkb
              (Printf.sprintf "exhaust at %d: answer still exact" n)
              true (Tuple.Set.equal ts oracle)
        | Error (`Msg _) -> ()
        | exception Budget.Exhausted _ -> ()
      done)
    phis;
  (* Same discipline for delta maintenance: a fault mid-propagation may
     abort the run, never corrupt a result that is then reported. *)
  let phi = f "E(x,y) & E(y,z)" in
  let e = Algebra.Project (Formula.free_vars phi, Compile.compile phi) in
  for n = 1 to 30 do
    let budget = Budget.create ~inject:(Budget.Exhaust_at n) () in
    let db = Algebra.Database.of_structure fault_structure in
    match
      let d =
        match Delta.materialize ~budget db e with
        | Ok d -> d
        | Error m -> Alcotest.fail m
      in
      List.iter
        (fun (tup, add) ->
          match Delta.update ~budget d ~rel:"E" tup ~add with
          | Ok () -> ()
          | Error m -> Alcotest.fail m)
        [ ([| 1; 3 |], true); ([| 0; 1 |], false); ([| 1; 3 |], false) ];
      d
    with
    | d ->
        let mirror =
          apply_structure
            (apply_structure
               (apply_structure fault_structure "E" [| 1; 3 |] true)
               "E" [| 0; 1 |] false)
            "E" [| 1; 3 |] false
        in
        let fresh =
          match Compile.answers_naive mirror phi with
          | Ok (_, ts) -> ts
          | Error (`Msg m) -> Alcotest.fail m
        in
        checkb
          (Printf.sprintf "delta under exhaust at %d: exact" n)
          true
          (Tuple.Set.equal (Relation.tuples (Delta.result d)) fresh)
    | exception Budget.Exhausted _ -> ()
  done

(* ---------- plan shapes ---------- *)

(* An acyclic multi-join goes through the GYO reducer: the physical plan
   carries semijoins, and the answers still match the oracle. *)
let test_acyclic_semijoin_plan () =
  let sg3 = Signature.make [ ("R", 2); ("S", 2); ("T", 2) ] in
  let s =
    Structure.make sg3 ~size:6
      [
        ("R", [ [| 0; 1 |]; [| 1; 2 |]; [| 2; 3 |]; [| 5; 5 |] ]);
        ("S", [ [| 1; 2 |]; [| 2; 4 |]; [| 3; 3 |] ]);
        ("T", [ [| 2; 0 |]; [| 4; 5 |]; [| 3; 1 |] ]);
      ]
  in
  let phi = f "R(x,y) & S(y,z) & T(z,w)" in
  let fv = Formula.free_vars phi in
  let db = Algebra.Database.of_structure s in
  let e = Algebra.Project (fv, Compile.compile phi) in
  (match Planner.explain db e with
  | Error m -> Alcotest.fail m
  | Ok ex ->
      let pp = Format.asprintf "%a" Physical.pp ex.Planner.physical in
      checkb "acyclic plan uses semijoin reduction" true
        (let contains hay needle =
           let nh = String.length hay and nn = String.length needle in
           let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
           go 0
         in
         contains pp "semijoin"));
  let planned =
    match Compile.answers_any s phi with
    | Ok (_, ts) -> ts
    | Error (`Msg m) -> Alcotest.fail m
  in
  let naive =
    match Compile.answers_naive s phi with
    | Ok (_, ts) -> ts
    | Error (`Msg m) -> Alcotest.fail m
  in
  checkb "acyclic answers match" true (Tuple.Set.equal planned naive)

(* Hand-picked shapes that exercise the padding/anti/copy paths of the
   join planner (pure equalities, pure inequalities, negated atoms,
   cardinality sentences). *)
let test_tricky_shapes () =
  let s = fault_structure in
  List.iter
    (fun txt ->
      let phi = f txt in
      let planned =
        match Compile.answers_any s phi with
        | Ok (_, ts) -> ts
        | Error (`Msg m) -> Alcotest.failf "%s: %s" txt m
      in
      let naive =
        match Compile.answers_naive s phi with
        | Ok (_, ts) -> ts
        | Error (`Msg m) -> Alcotest.failf "%s: %s" txt m
      in
      checkb txt true (Tuple.Set.equal planned naive))
    [
      "x = y";
      "x != y";
      "x = y & E(x,z)";
      "!(x = y) & P(x)";
      "exists y. !E(x,y)";
      "!(exists y. E(x,y))";
      "forall y. E(x,y)";
      "E(x,x)";
      "E(x,y) & x != y";
    ];
  (* counting sentences across domain sizes *)
  for n = 1 to 5 do
    let set_n = Gen.set n in
    for k = 1 to 5 do
      match Compile.sat_any set_n (Formula.at_least k) with
      | Ok v ->
          checkb (Printf.sprintf "at_least %d on %d" k n) (n >= k) v
      | Error (`Msg m) -> Alcotest.fail m
    done
  done

(* The safe-range gate: [answers]/[sat] refuse domain-dependent queries
   with a clean [`Msg]; the [_any] variants answer them under the
   active-domain convention. *)
let test_safe_range_gate () =
  let s = fault_structure in
  (match Compile.answers s (f "E(x,y) & E(y,z)") with
  | Ok _ -> ()
  | Error (`Msg m) -> Alcotest.failf "safe-range query refused: %s" m);
  (match Compile.answers s (f "!E(x,y)") with
  | Ok _ -> Alcotest.fail "unsafe query accepted"
  | Error (`Msg m) ->
      checkb "refusal names safe-range" true
        (let contains hay needle =
           let nh = String.length hay and nn = String.length needle in
           let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
           go 0
         in
         contains m "safe-range"));
  match Compile.answers_any s (f "!E(x,y)") with
  | Ok (_, ts) ->
      let direct =
        Eval.definable_relation s (f "!E(x,y)") ~vars:[ "x"; "y" ]
      in
      checkb "padded variant answers" true (Tuple.Set.equal ts direct)
  | Error (`Msg m) -> Alcotest.fail m

(* An index probe replaces a scan leaf's execution with bare membership
   of the pattern tuple, so any scan constraint the pattern cannot
   express must force the SemiJoin fallback. These shapes are
   unreachable from [Compile] output (repeated variables are projected
   to one column and constants become literal join leaves) but
   [Planner.plan] is public over arbitrary algebra terms: a constant
   selection or an attribute equality landing on positions the probe
   already determines used to be dropped silently, turning the probe
   into a superset of the fused predicate. *)
let test_probe_residual_constraints () =
  let sg2 = Signature.make [ ("R", 2); ("S", 2) ] in
  let s =
    Structure.make sg2 ~size:4
      [
        ( "R",
          [ [| 0; 1 |]; [| 1; 1 |]; [| 2; 2 |]; [| 3; 0 |]; [| 1; 0 |]; [| 2; 1 |] ]
        );
        ("S", [ [| 0; 1 |]; [| 1; 1 |] ]);
      ]
  in
  let db = Algebra.Database.of_structure s in
  let leaf rel = Algebra.Rename ([ ("#1", "x"); ("#2", "y") ], Base rel) in
  List.iter
    (fun (label, e) ->
      let e = Algebra.Project ([ "x"; "y" ], e) in
      let naive =
        match Algebra.eval db e with
        | Ok r -> Relation.tuples r
        | Error m -> Alcotest.failf "%s: eval: %s" label m
      in
      let planned =
        match Planner.plan db e with
        | Error m -> Alcotest.failf "%s: plan: %s" label m
        | Ok p -> (
            match Physical.run db p with
            | Ok r -> Relation.tuples r
            | Error m -> Alcotest.failf "%s: run: %s" label m)
      in
      checkb label true (Tuple.Set.equal naive planned))
    [
      (* constant on a position the probe pattern already determines *)
      ( "probe keeps const selection",
        Algebra.Join (leaf "S", Select (Eq_const ("x", 0), leaf "R")) );
      (* equality between two already-determined positions *)
      ( "probe keeps attr equality",
        Algebra.Join (leaf "S", Select (Eq_attr ("x", "y"), leaf "R")) );
      (* same residuals on the anti side *)
      ( "anti probe keeps const selection",
        Algebra.Diff (leaf "S", Select (Eq_const ("x", 0), leaf "R")) );
      ( "anti probe keeps attr equality",
        Algebra.Diff (leaf "S", Select (Eq_attr ("x", "y"), leaf "R")) );
    ]

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_planned_matches_oracles;
      prop_rewrite_preserves_semantics;
      prop_delta_tracks_recompute;
    ]

let () =
  Alcotest.run "fmtk_planner"
    [
      ("differential", qcheck_cases);
      ( "faults",
        [
          Alcotest.test_case "budget injection never lies" `Quick
            test_budget_fault_injection;
        ] );
      ( "plans",
        [
          Alcotest.test_case "acyclic semijoin reduction" `Quick
            test_acyclic_semijoin_plan;
          Alcotest.test_case "tricky shapes" `Quick test_tricky_shapes;
          Alcotest.test_case "probe residual constraints" `Quick
            test_probe_residual_constraints;
          Alcotest.test_case "safe-range gate" `Quick test_safe_range_gate;
        ] );
    ]
