The serve failure surface: every malformed or over-limit input gets a
structured single-line error and the server keeps serving; SIGTERM
drains and exits 0.

Timing fields vary run to run, so responses pass through a small
normalizer. The socket lives under a fresh /tmp name because cram
sandbox paths overflow sun_path.

  $ strip_ms() { sed -E 's/,"ms":[0-9.e-]+//'; }
  $ SOCK=$(mktemp -u /tmp/fmtk-serve-XXXXXX.sock)
  $ ../bin/fmtk_cli.exe serve --socket "$SOCK" --quiet --max-timeout 30 \
  >   --max-line 4096 --preload c6=cycle:6 &
  $ SERVER_PID=$!

A well-formed round trip first (the client retries until the server is
up):

  $ ../bin/fmtk_cli.exe query --socket "$SOCK" \
  >   '{"op":"ping","id":1}' | strip_ms
  {"id":1,"status":"ok","result":{"pong":true}}

Malformed JSON, an unknown op, an unknown structure, an over-limit
deadline, a bad generator spec — each a structured error, none fatal:

  $ ../bin/fmtk_cli.exe query --socket "$SOCK" \
  >   'this is not json' \
  >   '{"op":"transmogrify","id":2}' \
  >   '{"op":"eval","id":3,"structure":"ghost","formula":"E(x,y)"}' \
  >   '{"op":"decide","id":4,"left":"c6","right":"c6","rank":2,"timeout":9999}' \
  >   '{"op":"eval","id":5,"structure":"c6","formula":"exists x. ("}' \
  >   '{"op":"load","id":6,"name":"bad","spec":"cycle:zero"}' | strip_ms
  {"status":"error","code":"bad-json","error":"JSON error at column 1: expected \"true\""}
  {"id":2,"status":"error","code":"bad-request","error":"unknown op \"transmogrify\""}
  {"id":3,"status":"error","code":"unknown-structure","error":"no structure named \"ghost\" (use the load op)"}
  {"id":4,"status":"error","code":"deadline-over-limit","error":"requested timeout 9999.000s exceeds the server cap 30.000s"}
  {"id":5,"status":"error","code":"parse-error","error":"parse error: line 1, column 12: expected atom"}
  {"id":6,"status":"error","code":"parse-error","error":"cycle spec needs an integer, got \"zero\""}

An oversized request line is refused without reading the rest:

  $ python3 -c 'print("{\"op\":\"ping\",\"pad\":\"" + "x"*5000 + "\"}")' \
  >   | ../bin/fmtk_cli.exe query --socket "$SOCK" | strip_ms
  {"status":"error","code":"oversized","error":"request line exceeds 4096 bytes"}

After the whole gauntlet the server still answers real work:

  $ ../bin/fmtk_cli.exe query --socket "$SOCK" \
  >   '{"op":"eval","id":7,"structure":"c6","formula":"forall x. exists y. E(x,y)"}' \
  >   '{"op":"game","id":8,"left":"c6","right":"c6","rounds":2}' | strip_ms
  {"id":7,"status":"ok","result":{"value":true}}
  {"id":8,"status":"ok","result":{"game":"ef","rounds":2,"equivalent":true,"positions":12}}

SIGTERM: graceful drain, exit status 0, socket file removed:

  $ kill -TERM "$SERVER_PID"
  $ wait "$SERVER_PID"
  $ test -e "$SOCK" && echo still there || echo gone
  gone

Durability: with --data-dir every acked load/drop is journaled before
the ack, so a kill -9 loses nothing. Load two structures, drop one,
SIGKILL the server; a fresh server on the same data dir recovers
exactly the acked state and reports the replay in stats.

  $ SOCK2=$(mktemp -u /tmp/fmtk-serve-XXXXXX.sock)
  $ ../bin/fmtk_cli.exe serve --socket "$SOCK2" --quiet --data-dir d1 &
  $ SERVER_PID=$!
  $ ../bin/fmtk_cli.exe query --socket "$SOCK2" \
  >   '{"op":"load","id":1,"name":"keep","spec":"cycle:5"}' \
  >   '{"op":"load","id":2,"name":"gone","spec":"cycle:4"}' \
  >   '{"op":"drop","id":3,"name":"gone"}' | strip_ms
  {"id":1,"status":"ok","result":{"name":"keep","size":5,"tuples":5}}
  {"id":2,"status":"ok","result":{"name":"gone","size":4,"tuples":4}}
  {"id":3,"status":"ok","result":{"name":"gone","dropped":true}}
  $ kill -KILL "$SERVER_PID"
  $ wait "$SERVER_PID" 2>/dev/null || true

  $ ../bin/fmtk_cli.exe serve --socket "$SOCK2" --quiet --data-dir d1 &
  $ SERVER_PID=$!
  $ ../bin/fmtk_cli.exe query --socket "$SOCK2" \
  >   '{"op":"list","id":4}' \
  >   '{"op":"eval","id":5,"structure":"keep","formula":"forall x. exists y. E(x,y)"}' | strip_ms
  {"id":4,"status":"ok","result":{"structures":[{"name":"keep","size":5}]}}
  {"id":5,"status":"ok","result":{"value":true}}
  $ ../bin/fmtk_cli.exe query --socket "$SOCK2" '{"op":"stats","id":6}' \
  >   | grep -o '"recovered_journal":[0-9]*'
  "recovered_journal":3
  $ kill -TERM "$SERVER_PID"
  $ wait "$SERVER_PID"

A corrupted data dir refuses startup with a structured error instead
of silently serving bad data (flip one journal header byte):

  $ python3 -c 'p="d1/journal.fmtk"; b=bytearray(open(p,"rb").read()); b[2]^=255; open(p,"wb").write(b)' > /dev/null
  $ ../bin/fmtk_cli.exe serve --socket "$SOCK2" --quiet --data-dir d1
  fmtk: data dir d1 unusable: journal corrupt at byte 0: header checksum mismatch
  [1]
