(* Differential suite for the CSR storage backend: every observable —
   evaluation, colour refinement, neighborhood censuses, Hanf
   equivalence, bounded-degree verdicts — must be identical whether a
   binary relation is stored as a tuple set or as CSR rows, for every
   worker count, and under budget fault injection. *)

module Signature = Fmtk_logic.Signature
module Parser = Fmtk_logic.Parser
module Structure = Fmtk_structure.Structure
module Csr = Fmtk_structure.Csr
module Gen = Fmtk_structure.Gen
module Wl = Fmtk_structure.Wl
module Io = Fmtk_structure.Structure_io
module Eval = Fmtk_eval.Eval
module Neighborhood = Fmtk_locality.Neighborhood
module Hanf = Fmtk_locality.Hanf
module Bounded_degree = Fmtk_locality.Bounded_degree
module Budget = Fmtk_runtime.Budget
module Spec = Fmtk.Spec

let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg
let f s = Result.get_ok (Parser.parse s)

(* ---------- Csr unit behaviour ---------- *)

let test_csr_normalized () =
  (* Rows come out sorted and deduplicated whatever the input order. *)
  let c = Csr.of_edges ~n:4 ([| 2; 0; 0; 2; 0 |], [| 1; 3; 2; 1; 3 |]) in
  checki "dedup" 3 (Csr.edge_count c);
  checkb "row sorted" true
    (let acc = ref [] in
     Csr.iter_row c 0 (fun w -> acc := w :: !acc);
     List.rev !acc = [ 2; 3 ]);
  checkb "mem yes" true (Csr.mem c 2 1);
  checkb "mem no" false (Csr.mem c 1 2);
  checkb "mem out of range" false (Csr.mem c 9 1);
  checkb "equal after shuffle" true
    (Csr.equal c (Csr.of_edges ~n:4 ([| 0; 0; 2 |], [| 3; 2; 1 |])))

let test_csr_append_relabel () =
  let a = Csr.of_edges ~n:2 ([| 0 |], [| 1 |]) in
  let b = Csr.of_edges ~n:3 ([| 2 |], [| 0 |]) in
  let u = Csr.append a b in
  checki "union nodes" 5 (Csr.nodes u);
  checkb "left kept" true (Csr.mem u 0 1);
  checkb "right shifted" true (Csr.mem u 4 2);
  let r = Csr.relabel a [| 1; 0 |] in
  checkb "relabel" true (Csr.mem r 1 0 && not (Csr.mem r 0 1))

let test_csr_degrees () =
  let c = Csr.of_edges ~n:3 ([| 0; 0; 1 |], [| 1; 2; 2 |]) in
  checki "degree" 2 (Csr.degree c 0);
  checki "max degree" 2 (Csr.max_degree c);
  checkb "in degrees" true (Csr.in_degrees c = [| 0; 1; 2 |])

(* ---------- Structure auto-selection ---------- *)

let test_backend_selection () =
  let small = Gen.cycle 10 in
  Alcotest.(check string) "small stays set" "set" (Structure.backend_summary small);
  let big = Gen.cycle Structure.csr_auto_threshold in
  Alcotest.(check string) "big auto-csr" "csr" (Structure.backend_summary big);
  let forced = Structure.to_csr small in
  Alcotest.(check string) "forced csr" "csr" (Structure.backend_summary forced);
  Alcotest.(check string) "back to sets" "set"
    (Structure.backend_summary (Structure.to_sets forced));
  checkb "of_graph is csr" true
    (Structure.rel_backend (Gen.torus 3 3) "E" = `Csr)

(* ---------- Differential properties ----------

   Both backends of the same structure must agree observably. The
   qcheck generator draws small random digraphs; [both] returns the
   set-backed and CSR-backed views. *)

let gen_graph : Structure.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* n = int_range 1 14 in
  let* edges = list_size (int_range 0 30) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
  return
    (Structure.make Signature.graph ~size:n
       [ ("E", List.map (fun (u, v) -> [| u; v |]) edges) ])

let both g = (Structure.to_sets g, Structure.to_csr g)

let sentences =
  [
    f "forall x. exists y. E(x,y) | E(y,x)";
    f "exists x. exists y. E(x,y) & E(y,x)";
    f "forall x. ~E(x,x)";
  ]

let prop_eval_agrees =
  QCheck2.Test.make ~count:100 ~name:"eval: csr = set" gen_graph (fun g ->
      let s, c = both g in
      List.for_all (fun phi -> Eval.sat s phi = Eval.sat c phi) sentences)

let prop_structure_equal =
  QCheck2.Test.make ~count:100 ~name:"equal/mem/rel_count: csr = set" gen_graph
    (fun g ->
      let s, c = both g in
      Structure.equal s c
      && Structure.rel_count s "E" = Structure.rel_count c "E"
      && List.for_all
           (fun u ->
             List.for_all
               (fun v -> Structure.mem s "E" [| u; v |] = Structure.mem c "E" [| u; v |])
               (Structure.domain s))
           (Structure.domain s))

let prop_wl_agrees =
  QCheck2.Test.make ~count:100 ~name:"wl refine: csr = set, workers 1/2/4"
    gen_graph (fun g ->
      let s, c = both g in
      let base = Wl.refine s in
      List.for_all
        (fun workers -> Wl.refine ~workers c = base && Wl.refine ~workers s = base)
        [ 1; 2; 4 ])

let prop_census_agrees =
  QCheck2.Test.make ~count:100
    ~name:"neighborhood census: csr = set = generic, workers 1/2/4" gen_graph
    (fun g ->
      let s, c = both g in
      List.for_all
        (fun radius ->
          (* Fresh registries: ids must coincide because discovery order
             does — that is the determinism claim, stronger than census
             equality up to renaming. *)
          let census b x =
            let reg = Neighborhood.create_registry () in
            Neighborhood.census ~workers:b reg x ~radius
          in
          let base = census 1 s in
          List.for_all (fun w -> census w c = base && census w s = base) [ 1; 2; 4 ])
        [ 0; 1; 2 ])

let prop_element_types_agree =
  QCheck2.Test.make ~count:100 ~name:"element types: csr = set, shared registry"
    gen_graph (fun g ->
      let s, c = both g in
      (* One registry across both views: the streaming fast path (csr)
         and its serialization cache must resolve to the ids the generic
         path established, and vice versa. *)
      let reg = Neighborhood.create_registry () in
      Neighborhood.element_types reg s ~radius:1
      = Neighborhood.element_types reg c ~radius:1)

let prop_hanf_agrees =
  QCheck2.Test.make ~count:60 ~name:"hanf equiv: csr = set, workers 1/2/4"
    QCheck2.Gen.(pair gen_graph gen_graph) (fun (g, h) ->
      let gs, gc = both g and hs, hc = both h in
      Structure.size g <> Structure.size h
      ||
      let base = Hanf.equiv ~radius:1 gs hs in
      List.for_all
        (fun workers -> Hanf.equiv ~workers ~radius:1 gc hc = base)
        [ 1; 2; 4 ])

let prop_bounded_degree_agrees =
  QCheck2.Test.make ~count:40 ~name:"bounded degree eval: csr = set" gen_graph
    (fun g ->
      let s, c = both g in
      let phi = f "forall x. exists y. E(x,y) | E(y,x)" in
      let ev () = Bounded_degree.make phi ~degree_bound:30 ~radius:1 ~threshold:2 in
      Bounded_degree.eval (ev ()) s = Bounded_degree.eval (ev ()) c)

(* ---------- Fault injection through the locality pipeline ---------- *)

let test_census_budget_faults () =
  let g = Structure.to_csr (Gen.cycle 64) in
  let reg () = Neighborhood.create_registry () in
  (* Exhaust_at: the census raises instead of answering, sequential and
     sharded alike. *)
  List.iter
    (fun workers ->
      let budget = Budget.create ~inject:(Budget.Exhaust_at 10) () in
      match Neighborhood.census ~workers ~budget (reg ()) g ~radius:1 with
      | _ -> Alcotest.failf "Exhaust_at survived (workers %d)" workers
      | exception Budget.Exhausted Budget.Fuel -> ())
    [ 1; 2; 4 ];
  (* Cancel_at behaves the same way. *)
  (let budget = Budget.create ~inject:(Budget.Cancel_at 10) () in
   match Neighborhood.census ~workers:2 ~budget (reg ()) g ~radius:1 with
   | _ -> Alcotest.fail "Cancel_at survived"
   | exception Budget.Exhausted Budget.Cancelled -> ());
  (* Raise_in_worker: the real fault wins over any concurrent
     Exhausted, and join discipline means no worker is leaked — the
     next call on the same pool must still answer. *)
  (* poll_interval 1: Raise_in_worker fires on the slow-path poll, and
     each worker only polls a handful of times on a 64-element census. *)
  (let budget = Budget.create ~poll_interval:1 ~inject:Budget.Raise_in_worker () in
   match Neighborhood.census ~workers:4 ~budget (reg ()) g ~radius:1 with
   | _ -> Alcotest.fail "Raise_in_worker survived"
   | exception Budget.Injected_fault -> ());
  let clean = Neighborhood.census ~workers:4 (reg ()) g ~radius:1 in
  checki "pool usable after fault" 1 (List.length clean);
  (* Wl.refine under the same discipline. *)
  (let budget = Budget.create ~inject:(Budget.Exhaust_at 5) () in
   match Wl.refine ~workers:2 ~budget g with
   | _ -> Alcotest.fail "refine: Exhaust_at survived"
   | exception Budget.Exhausted Budget.Fuel -> ());
  checkb "refine usable after fault" true (Array.length (Wl.refine ~workers:2 g) = 64)

(* ---------- Large-scale generators ---------- *)

let test_generators_regular () =
  let degrees g =
    let c = Option.get (Structure.csr_of_rel g "E") in
    List.init (Structure.size g) (Csr.degree c)
  in
  let t = Gen.torus 5 4 in
  checkb "torus 4-regular" true (List.for_all (( = ) 4) (degrees t));
  checki "torus vertex-transitive" 1
    (List.length (Neighborhood.census (Neighborhood.create_registry ()) t ~radius:1));
  let ch = Gen.chorded_cycle 12 ~stride:3 in
  checkb "chorded 4-regular" true (List.for_all (( = ) 4) (degrees ch));
  let rng = Random.State.make [| 7 |] in
  let r = Gen.random_regular ~rng 40 3 in
  checkb "random-regular exact" true (List.for_all (( = ) 3) (degrees r));
  checkb "no self loops" true
    (let ok = ref true in
     Structure.iter_rel2 r "E" (fun u v -> if u = v then ok := false);
     !ok);
  checkb "symmetric" true
    (let c = Option.get (Structure.csr_of_rel r "E") in
     let ok = ref true in
     Csr.iter_edges c (fun u v -> if not (Csr.mem c v u) then ok := false);
     !ok);
  (* Determinism: the same seed reproduces the same graph. *)
  let r2 = Gen.random_regular ~rng:(Random.State.make [| 7 |]) 40 3 in
  checkb "seeded determinism" true (Structure.equal r r2)

(* ---------- Streaming edge-list format ---------- *)

let test_graph_format () =
  let s = Result.get_ok (Io.parse "# c5\ngraph 5\n0 1\n1 2\n2 3\n3 4\n4 0\n") in
  checki "undirected doubles" 10 (Structure.rel_count s "E");
  checkb "roundtrip" true
    (Structure.equal s (Result.get_ok (Io.parse (Io.to_graph_string s))));
  let d = Result.get_ok (Io.parse "graph 3 directed\n0 1\n1 2\n") in
  checki "directed keeps" 2 (Structure.rel_count d "E");
  checkb "directed equal gen" true (Structure.equal d (Gen.path 3));
  (* Total-parser error discipline: malformed lines answer Error with a
     line number, never an exception. *)
  List.iter
    (fun (text, frag) ->
      match Io.parse text with
      | Ok _ -> Alcotest.failf "accepted %S" text
      | Error e ->
          let contains hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
            go 0
          in
          checkb (Printf.sprintf "%S reports %s" text frag) true (contains e frag))
    [
      ("graph 3\n0 5\n", "line 2");
      ("graph 3\n0\n", "line 2");
      ("graph 3\n0 1 2\n", "trailing");
      ("graph 3\n0 99999999999999999999\n", "too large");
      ("graph -1\n", "bad graph header");
      ("graph 3 sideways\n", "bad graph header");
    ];
  (* [load] streams without reading the whole file. *)
  let tmp = Filename.temp_file "fmtk_graph" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let oc = open_out tmp in
      output_string oc "graph 4\n0 1\n1 2\n2 3\n";
      close_out oc;
      match Io.load tmp with
      | Ok g -> checki "loaded edges" 6 (Structure.rel_count g "E")
      | Error e -> Alcotest.fail e)

let test_spec_families () =
  let size spec =
    match Spec.parse spec with
    | Ok s -> Structure.size s
    | Error e -> Alcotest.fail e
  in
  checki "torus spec" 12 (size "torus:4x3");
  checki "chorded spec" 10 (size "chorded:10:3");
  checki "regular spec" 20 (size "regular:20:4:7");
  List.iter
    (fun bad ->
      match Spec.parse bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [ "torus:4"; "chorded:10:0"; "regular:20:21:7"; "regular:5:3:1" ]

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_eval_agrees;
      prop_structure_equal;
      prop_wl_agrees;
      prop_census_agrees;
      prop_element_types_agree;
      prop_hanf_agrees;
      prop_bounded_degree_agrees;
    ]

let () =
  Alcotest.run "fmtk_csr"
    [
      ( "csr",
        [
          Alcotest.test_case "normalized rows" `Quick test_csr_normalized;
          Alcotest.test_case "append and relabel" `Quick test_csr_append_relabel;
          Alcotest.test_case "degrees" `Quick test_csr_degrees;
        ] );
      ( "backend",
        [
          Alcotest.test_case "auto selection" `Quick test_backend_selection;
          Alcotest.test_case "budget faults" `Quick test_census_budget_faults;
        ] );
      ( "generators",
        [ Alcotest.test_case "regular families" `Quick test_generators_regular ] );
      ( "io",
        [
          Alcotest.test_case "graph format" `Quick test_graph_format;
          Alcotest.test_case "spec families" `Quick test_spec_families;
        ] );
      ("differential", qcheck_cases);
    ]
