(* Tests for Fmtk_games: EF solver, distinguishing formulas, the strategy
   library, pebble games. These certify the paper's §3.2 results on
   concrete instances. *)

module Signature = Fmtk_logic.Signature
module Formula = Fmtk_logic.Formula
module Structure = Fmtk_structure.Structure
module Gen = Fmtk_structure.Gen
module Eval = Fmtk_eval.Eval
module Ef = Fmtk_games.Ef
module Distinguish = Fmtk_games.Distinguish
module Strategy = Fmtk_games.Strategy
module Pebble = Fmtk_games.Pebble

let checkb msg = Alcotest.check Alcotest.bool msg

let graph_of edges ~size =
  Structure.make Signature.graph ~size
    [ ("E", List.map (fun (u, v) -> [| u; v |]) edges) ]

(* ---------- EF solver on sets (slides 44-45) ---------- *)

let test_ef_sets () =
  (* Duplicator wins the n-round game on sets of size >= n. *)
  for n = 0 to 3 do
    for m = 1 to 5 do
      for k = 1 to 5 do
        let expected = m = k || (m >= n && k >= n) in
        checkb
          (Printf.sprintf "sets m=%d k=%d n=%d" m k n)
          expected
          (Ef.duplicator_wins ~rounds:n (Gen.set m) (Gen.set k))
      done
    done
  done

let test_ef_even_sets () =
  (* The EVEN proof: 2n vs 2n+1 element sets are ≡n. *)
  for n = 1 to 3 do
    checkb
      (Printf.sprintf "2n vs 2n+1 at n=%d" n)
      true
      (Ef.duplicator_wins ~rounds:n (Gen.set (2 * n)) (Gen.set ((2 * n) + 1)))
  done

(* ---------- EF solver agrees with ≡n on formulas ---------- *)

(* a ≡n b implies agreement on all qr <= n sentences; disagreement on a
   qr <= n sentence implies spoiler wins. *)
let sentences_qr2 =
  List.map Fmtk_logic.Parser.parse_exn
    [
      "exists x. E(x,x)";
      "exists x y. E(x,y)";
      "forall x. exists y. E(x,y)";
      "exists x. forall y. E(x,y)";
      "forall x y. E(x,y) -> E(y,x)";
    ]

let test_ef_respects_sentences () =
  let graphs =
    [
      graph_of [ (0, 1); (1, 0) ] ~size:2;
      graph_of [ (0, 0) ] ~size:2;
      graph_of [ (0, 1); (1, 2) ] ~size:3;
      Gen.cycle 3;
      Gen.complete 3;
    ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if Ef.duplicator_wins ~rounds:2 a b then
            List.iter
              (fun phi ->
                checkb
                  (Printf.sprintf "≡2 agreement on %s" (Formula.to_string phi))
                  (Eval.sat a phi) (Eval.sat b phi))
              sentences_qr2)
        graphs)
    graphs

(* ---------- Theorem 3.1: linear orders ---------- *)

let test_linear_orders_theorem () =
  (* m, k >= 2^n ==> L_m ≡n L_k; exact characterization: m = k or both >=
     2^n - 1. Cross-validate solver against the closed form for n <= 2 and
     a diagonal of n = 3 cases. *)
  for n = 0 to 2 do
    for m = 0 to 6 do
      for k = 0 to 6 do
        let expected = Strategy.linear_orders_equiv ~rounds:n m k in
        checkb
          (Printf.sprintf "L%d vs L%d at n=%d" m k n)
          expected
          (Ef.duplicator_wins ~rounds:n (Gen.linear_order m) (Gen.linear_order k))
      done
    done
  done;
  (* n = 3: boundary 2^3 - 1 = 7. *)
  List.iter
    (fun (m, k, expected) ->
      checkb
        (Printf.sprintf "L%d vs L%d at n=3" m k)
        expected
        (Ef.duplicator_wins ~rounds:3 (Gen.linear_order m) (Gen.linear_order k)))
    [ (7, 8, true); (6, 7, false); (7, 9, true); (8, 9, true); (5, 6, false) ]

(* ---------- Distinguishing formulas ---------- *)

let check_distinguishes ~rounds a b =
  match Distinguish.sentence ~rounds a b with
  | None -> Alcotest.fail "expected a distinguishing sentence"
  | Some phi ->
      checkb
        (Printf.sprintf "qr of %s" (Formula.to_string phi))
        true
        (Formula.quantifier_rank phi <= rounds);
      checkb "A satisfies it" true (Eval.sat a phi);
      checkb "B falsifies it" false (Eval.sat b phi)

let test_distinguish_sets () =
  (* Sets of sizes 2 and 3 are distinguished at rank 3 but not rank 2. *)
  check_distinguishes ~rounds:3 (Gen.set 3) (Gen.set 2);
  checkb "rank 2 cannot" true
    (Distinguish.sentence ~rounds:2 (Gen.set 3) (Gen.set 2) = None)

let test_distinguish_graphs () =
  (* Loop vs no loop: rank 1. *)
  check_distinguishes ~rounds:1 (graph_of [ (0, 0) ] ~size:1) (graph_of [] ~size:1);
  (* C3 vs C4 (directed cycles). *)
  check_distinguishes ~rounds:3 (Gen.cycle 3) (Gen.cycle 4);
  (* Orders L2 vs L3 at rank 2 (see slide 46 discussion). *)
  check_distinguishes ~rounds:2 (Gen.linear_order 3) (Gen.linear_order 2)

let test_distinguish_agrees_with_solver () =
  let instances =
    [
      (Gen.set 2, Gen.set 3, 2);
      (Gen.set 2, Gen.set 3, 3);
      (Gen.cycle 3, Gen.cycle 4, 2);
      (Gen.cycle 3, Gen.cycle 4, 3);
      (Gen.linear_order 3, Gen.linear_order 4, 2);
      (Gen.path 3, Gen.path 4, 2);
    ]
  in
  List.iter
    (fun (a, b, n) ->
      let dup_wins = Ef.duplicator_wins ~rounds:n a b in
      let formula_exists = Distinguish.sentence ~rounds:n a b <> None in
      checkb
        (Printf.sprintf "solver vs extractor (n=%d)" n)
        (not dup_wins) formula_exists)
    instances

let test_games_from_position () =
  (* Starting positions: pinned pebbles restrict the duplicator. *)
  let a = Gen.linear_order 4 and b = Gen.linear_order 4 in
  (* Identity-compatible start: still a win. *)
  checkb "compatible start" true
    (Ef.duplicator_wins_from ~rounds:2 a b [ (0, 0); (3, 3) ]);
  (* Order-violating start is an immediate loss. *)
  checkb "broken start" false
    (Ef.duplicator_wins_from ~rounds:0 a b [ (0, 3); (3, 0) ]);
  (* Start pairing the minimum with a middle element: one round suffices
     for the spoiler (play something below the middle element). *)
  checkb "skewed start loses" false
    (Ef.duplicator_wins_from ~rounds:1 a b [ (0, 2) ]);
  (* With zero rounds the same position survives (it is a partial iso). *)
  checkb "skewed start is still a partial iso" true
    (Ef.duplicator_wins_from ~rounds:0 a b [ (0, 2) ])

let test_distinguish_open_formula () =
  (* From the skewed start (0 ↦ 2) on L4 vs L4, extract an open formula
     phi(x1) that holds of 0 in A but fails of 2 in B. *)
  let a = Gen.linear_order 4 and b = Gen.linear_order 4 in
  match Distinguish.formula ~rounds:1 a b [ (0, 2) ] with
  | None -> Alcotest.fail "expected a distinguishing formula"
  | Some phi ->
      checkb "qr <= 1" true (Formula.quantifier_rank phi <= 1);
      Alcotest.(check (list string)) "free variable" [ "x1" ] (Formula.free_vars phi);
      let holds_at s e =
        Eval.holds s phi ~env:(Eval.bind "x1" e Eval.empty_env)
      in
      checkb "holds at 0 in A" true (holds_at a 0);
      checkb "fails at 2 in B" false (holds_at b 2)

(* ---------- Strategy library ---------- *)

let test_strategy_sets () =
  for m = 2 to 5 do
    for k = 2 to 5 do
      let a = Gen.set m and b = Gen.set k in
      let rounds = min m k in
      checkb
        (Printf.sprintf "sets strategy %d/%d survives %d rounds" m k rounds)
        true
        (Strategy.verify ~rounds a b (Strategy.sets a b) = None)
    done
  done

let test_strategy_linear_orders () =
  (* The distance-doubling strategy survives n rounds on L_m, L_k with
     m, k >= 2^n. *)
  List.iter
    (fun (m, k, n) ->
      let a = Gen.linear_order m and b = Gen.linear_order k in
      checkb
        (Printf.sprintf "order strategy L%d/L%d for %d rounds" m k n)
        true
        (Strategy.verify ~rounds:n a b (Strategy.linear_orders m k) = None))
    [ (4, 5, 2); (5, 6, 2); (8, 9, 3); (8, 11, 3); (16, 17, 4) ]

let test_strategy_successor_chains () =
  (* The "successor relation would do" remark: the doubled-threshold
     strategy wins on successor chains of sizes >= 2^(rounds+1). *)
  List.iter
    (fun (m, k, n) ->
      let a = Gen.successor m and b = Gen.successor k in
      checkb
        (Printf.sprintf "successor strategy S%d/S%d for %d rounds" m k n)
        true
        (Strategy.verify ~rounds:n a b (Strategy.successor_chains m k) = None))
    [ (8, 9, 2); (8, 12, 2); (16, 17, 3) ];
  (* Sanity via the exact solver: big-enough successor chains are ≡2. *)
  checkb "S8 ≡2 S9 (solver)" true
    (Ef.duplicator_wins ~rounds:2 (Gen.successor 8) (Gen.successor 9))

let test_strategy_directed_cycles () =
  (* Wins when both sizes >= 2^(rounds+2); exhaustively verified. *)
  List.iter
    (fun (m, k, n) ->
      let a = Gen.cycle m and b = Gen.cycle k in
      checkb
        (Printf.sprintf "cycle strategy C%d/C%d for %d rounds" m k n)
        true
        (Strategy.verify ~rounds:n a b (Strategy.directed_cycles m k) = None))
    [ (8, 9, 1); (16, 17, 2); (16, 20, 2) ];
  (* Solver agrees cycles of large equal-ish sizes are ≡2. *)
  checkb "C16 ≡2 C17 (solver)" true
    (Ef.duplicator_wins ~rounds:2 (Gen.cycle 16) (Gen.cycle 17))

let test_strategy_union_composition () =
  (* Compose set strategies across a disjoint union of two edgeless
     graphs — the union is again ≡n. *)
  let g n = graph_of [] ~size:n in
  let a1 = g 3 and b1 = g 4 and a2 = g 5 and b2 = g 3 in
  let s =
    Strategy.disjoint_union ~a1 ~b1 ~a2 ~b2
      (Strategy.sets a1 b1) (Strategy.sets a2 b2)
  in
  let a = Structure.disjoint_union a1 a2 and b = Structure.disjoint_union b1 b2 in
  checkb "composed strategy survives 3 rounds" true
    (Strategy.verify ~rounds:3 a b s = None)

(* ---------- Pebble games ---------- *)

let test_pebble_games () =
  (* With enough pebbles, the k-pebble game and EF game agree. *)
  let a = Gen.cycle 3 and b = Gen.cycle 4 in
  for n = 1 to 3 do
    checkb
      (Printf.sprintf "pebbles=rounds matches EF (n=%d)" n)
      (Ef.duplicator_wins ~rounds:n a b)
      (Pebble.duplicator_wins ~pebbles:n ~rounds:n a b)
  done;
  (* Large sets: 2 pebbles cannot count beyond 2 — duplicator survives
     many rounds on sets of different sizes >= 2. *)
  checkb "FO^2 cannot distinguish big sets" true
    (Pebble.duplicator_wins ~pebbles:2 ~rounds:5 (Gen.set 3) (Gen.set 4));
  (* But can distinguish sizes 1 vs 2 in one round. *)
  checkb "FO^2 distinguishes 1 vs 2" false
    (Pebble.duplicator_wins ~pebbles:2 ~rounds:2 (Gen.set 1) (Gen.set 2))

let test_pebble_monotone () =
  (* More pebbles only help the spoiler. *)
  let a = Gen.linear_order 4 and b = Gen.linear_order 5 in
  for k = 1 to 3 do
    let w_k = Pebble.duplicator_wins ~pebbles:k ~rounds:3 a b in
    let w_k1 = Pebble.duplicator_wins ~pebbles:(k + 1) ~rounds:3 a b in
    checkb (Printf.sprintf "monotone in pebbles k=%d" k) true ((not w_k1) || w_k)
  done

(* ---------- Memoization ablation ---------- *)

let test_memo_ablation () =
  let a = Gen.linear_order 5 and b = Gen.linear_order 6 in
  let with_memo, stats_memo =
    Ef.solve ~config:{ Ef.default_config with Ef.memo = true } ~rounds:2 a b
  in
  let without, stats_plain =
    Ef.solve ~config:{ Ef.default_config with Ef.memo = false } ~rounds:2 a b
  in
  checkb "same verdict" with_memo without;
  checkb "memo explores no more positions" true
    (stats_memo.Ef.positions <= stats_plain.Ef.positions);
  checkb "no-memo path reports no hits" true (stats_plain.Ef.memo_hits = 0)

(* ---------- QCheck properties ---------- *)

let gen_small_graph =
  let open QCheck2.Gen in
  let* n = int_range 1 4 in
  let* edges =
    list_size (int_range 0 n)
      (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
  in
  return (graph_of edges ~size:n)

let prop_ef_reflexive =
  QCheck2.Test.make ~count:50 ~name:"A ≡n A always" gen_small_graph (fun g ->
      Ef.duplicator_wins ~rounds:2 g g)

let prop_ef_symmetric =
  QCheck2.Test.make ~count:50 ~name:"≡n is symmetric"
    QCheck2.Gen.(pair gen_small_graph gen_small_graph)
    (fun (a, b) ->
      Ef.duplicator_wins ~rounds:2 a b = Ef.duplicator_wins ~rounds:2 b a)

let prop_ef_monotone_rounds =
  QCheck2.Test.make ~count:50 ~name:"≡(n+1) implies ≡n"
    QCheck2.Gen.(pair gen_small_graph gen_small_graph)
    (fun (a, b) ->
      (not (Ef.duplicator_wins ~rounds:3 a b)) || Ef.duplicator_wins ~rounds:2 a b)

let prop_iso_implies_equiv =
  QCheck2.Test.make ~count:50 ~name:"isomorphic implies ≡n" gen_small_graph
    (fun g ->
      let n = Structure.size g in
      let perm = Array.init n (fun i -> (i + 1) mod n) in
      Ef.duplicator_wins ~rounds:3 g (Structure.relabel g perm))

let prop_distinguish_sound =
  QCheck2.Test.make ~count:30 ~name:"extracted sentence is sound"
    QCheck2.Gen.(pair gen_small_graph gen_small_graph)
    (fun (a, b) ->
      match Distinguish.sentence ~rounds:2 a b with
      | None -> Ef.duplicator_wins ~rounds:2 a b
      | Some phi ->
          Formula.quantifier_rank phi <= 2
          && Eval.sat a phi
          && not (Eval.sat b phi))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_ef_reflexive;
      prop_ef_symmetric;
      prop_ef_monotone_rounds;
      prop_iso_implies_equiv;
      prop_distinguish_sound;
    ]

let () =
  Alcotest.run "fmtk_games"
    [
      ( "ef",
        [
          Alcotest.test_case "sets characterization" `Quick test_ef_sets;
          Alcotest.test_case "EVEN witnesses" `Quick test_ef_even_sets;
          Alcotest.test_case "≡n respects sentences" `Quick test_ef_respects_sentences;
          Alcotest.test_case "Theorem 3.1 orders" `Slow test_linear_orders_theorem;
        ] );
      ( "distinguish",
        [
          Alcotest.test_case "sets" `Quick test_distinguish_sets;
          Alcotest.test_case "graphs" `Quick test_distinguish_graphs;
          Alcotest.test_case "agrees with solver" `Quick test_distinguish_agrees_with_solver;
          Alcotest.test_case "start positions" `Quick test_games_from_position;
          Alcotest.test_case "open formulas" `Quick test_distinguish_open_formula;
        ] );
      ( "strategy",
        [
          Alcotest.test_case "sets" `Quick test_strategy_sets;
          Alcotest.test_case "linear orders" `Slow test_strategy_linear_orders;
          Alcotest.test_case "successor chains" `Quick test_strategy_successor_chains;
          Alcotest.test_case "directed cycles" `Slow test_strategy_directed_cycles;
          Alcotest.test_case "union composition" `Quick test_strategy_union_composition;
        ] );
      ( "pebble",
        [
          Alcotest.test_case "basic" `Quick test_pebble_games;
          Alcotest.test_case "monotone" `Quick test_pebble_monotone;
        ] );
      ("ablation", [ Alcotest.test_case "memoization" `Quick test_memo_ablation ]);
      ("properties", qcheck_cases);
    ]
