(* Differential tests for the generic game kernel (Fmtk_games.Engine)
   and its three instances.

   The EF and pebble solvers were ported from hand-rolled loops onto the
   kernel; the oracles below are deliberately naive re-implementations
   of the pre-refactor semantics (plain recursion, no memo, no orbits,
   no parallelism), so any divergence introduced by the kernel — memo
   keys, orbit pruning, the work-stealing fan-out — shows up as a
   verdict flip on random structure pairs. The counting game is checked
   against its closed-form companion (k-WL / C^{k+1}) through the sound
   one-directional implications, and against the Cai–Fürer–Immerman
   separation witnesses. *)

module Signature = Fmtk_logic.Signature
module Structure = Fmtk_structure.Structure
module Gen = Fmtk_structure.Gen
module Iso = Fmtk_structure.Iso
module Wl = Fmtk_structure.Wl
module Graph = Fmtk_structure.Graph
module Engine = Fmtk_games.Engine
module Ef = Fmtk_games.Ef
module Pebble = Fmtk_games.Pebble
module Counting_game = Fmtk_games.Counting_game
module Budget = Fmtk_runtime.Budget

let checkb msg = Alcotest.check Alcotest.bool msg

(* ---------- Oracles: pre-refactor game semantics, naively ---------- *)

let oracle_ef ~rounds a b =
  let dom_a = Structure.domain a and dom_b = Structure.domain b in
  let rec win n pairs =
    n = 0
    || (List.for_all
          (fun x ->
            List.exists
              (fun y ->
                Iso.extension_ok a b pairs (x, y) && win (n - 1) ((x, y) :: pairs))
              dom_b)
          dom_a
       && List.for_all
            (fun y ->
              List.exists
                (fun x ->
                  Iso.extension_ok a b pairs (x, y)
                  && win (n - 1) ((x, y) :: pairs))
                dom_a)
            dom_b)
  in
  Iso.partial_iso a b [] && win rounds []

let oracle_pebble ~pebbles ~rounds a b =
  let dom_a = Structure.domain a and dom_b = Structure.domain b in
  (* Positions as sorted pair lists (set semantics). *)
  let rec lift = function
    | [] -> []
    | p :: rest -> rest :: List.map (fun l -> p :: l) (lift rest)
  in
  let rec win n pairs =
    n = 0
    || begin
         let bases =
           if List.length pairs < pebbles then pairs :: lift pairs
           else lift pairs
         in
         let bases = if bases = [] then [ [] ] else bases in
         List.for_all
           (fun base ->
             List.for_all
               (fun x ->
                 List.exists
                   (fun y ->
                     Iso.extension_ok a b base (x, y)
                     && win (n - 1)
                          (List.sort_uniq compare ((x, y) :: base)))
                   dom_b)
               dom_a
             && List.for_all
                  (fun y ->
                    List.exists
                      (fun x ->
                        Iso.extension_ok a b base (x, y)
                        && win (n - 1)
                             (List.sort_uniq compare ((x, y) :: base)))
                      dom_a)
                  dom_b)
           bases
       end
  in
  Iso.partial_iso a b [] && win rounds []

(* ---------- Random structure pairs ---------- *)

let gen_structure : Structure.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let named =
    let* n = int_range 2 5 in
    oneofl
      [ Gen.cycle n; Gen.set n; Gen.linear_order n; Gen.path n;
        Gen.complete n ]
  in
  let random =
    let* n = int_range 2 5 in
    let* edges =
      list_size (int_range 0 (n * 2))
        (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    in
    return
      (Structure.make Signature.graph ~size:n
         [ ("E", List.map (fun (u, v) -> [| u; v |]) edges) ])
  in
  oneof [ named; random; random ]

(* Pairs biased toward near-equivalence: comparing a structure against
   itself or a same-family sibling exercises the Equivalent branch,
   which pruning bugs affect most. *)
let gen_pair =
  let open QCheck2.Gen in
  let* a = gen_structure in
  let* b = oneof [ gen_structure; return a ] in
  return (a, b)

(* ---------- Engine-ported solvers agree with the oracles ---------- *)

let ef_configs =
  [
    ("default", Ef.default_config);
    ("no-memo", { Ef.default_config with memo = false });
    ("no-orbit", { Ef.default_config with orbit = false });
    ("forced-parallel", { Ef.default_config with workers = Some 3 });
    ( "bare",
      { Ef.memo = false; parallel = false; workers = None; orbit = false } );
  ]

let prop_ef_matches_oracle =
  QCheck2.Test.make ~count:320 ~name:"engine EF = oracle EF (all configs)"
    QCheck2.Gen.(pair gen_pair (int_range 0 3))
    (fun ((a, b), rounds) ->
      let expected = oracle_ef ~rounds a b in
      List.for_all
        (fun (name, config) ->
          let got, (stats : Ef.stats) = Ef.solve ~config ~rounds a b in
          if got <> expected then
            QCheck2.Test.fail_reportf "EF config %s: got %b, oracle %b" name
              got expected
          else stats.workers >= 1)
        ef_configs)

let pebble_configs =
  [
    ("default", Pebble.default_config);
    ("no-memo", { Pebble.default_config with memo = false });
    ("no-orbit", { Pebble.default_config with orbit = false });
    ("forced-parallel", { Pebble.default_config with workers = Some 3 });
  ]

let prop_pebble_matches_oracle =
  QCheck2.Test.make ~count:320
    ~name:"engine pebble = oracle pebble (all configs)"
    QCheck2.Gen.(pair gen_pair (pair (int_range 1 3) (int_range 0 3)))
    (fun ((a, b), (pebbles, rounds)) ->
      let expected = oracle_pebble ~pebbles ~rounds a b in
      List.for_all
        (fun (name, config) ->
          let got, (_ : Pebble.stats) =
            Pebble.solve ~config ~pebbles ~rounds a b
          in
          if got <> expected then
            QCheck2.Test.fail_reportf "pebble config %s: got %b, oracle %b"
              name got expected
          else true)
        pebble_configs)

(* ---------- Counting game vs k-WL (sound implications only) ---------- *)

(* Unbounded-rank C^k equivalence is exactly (k-1)-WL equivalence, so:
   - the k-pebble counting game distinguishing at ANY rank implies
     (k-1)-WL distinguishes (contrapositive: (k-1)-WL-equivalent pairs
     are game-equivalent at every rank);
   - the game is monotone in rank.
   Both directions of the rank-by-rank correspondence would need a rank
   bound we don't have in closed form, so only these sound one-way
   checks are asserted — they are exactly what makes the game usable as
   a certificate. *)
let prop_counting_vs_kwl =
  QCheck2.Test.make ~count:120 ~name:"counting game vs k-WL implications"
    QCheck2.Gen.(pair gen_pair (int_range 2 3))
    (fun ((a, b), k) ->
      let wl_equiv = Wl.equiv ~k:(k - 1) a b in
      let game r = Counting_game.duplicator_wins ~pebbles:k ~rounds:r a b in
      let g1 = game 1 and g2 = game 2 and g3 = game 3 in
      (* Rank monotonicity: a spoiler win survives extra rounds. *)
      if (not g1) && (g2 || g3) then
        QCheck2.Test.fail_reportf "rank monotonicity broken (k=%d)" k
      else if (not g2) && g3 then
        QCheck2.Test.fail_reportf "rank monotonicity broken at 2->3 (k=%d)" k
      else if wl_equiv && not (g1 && g2 && g3) then
        QCheck2.Test.fail_reportf
          "%d-WL equivalent but C^%d game distinguishes" (k - 1) k
      else true)

(* The bijective 1-pebble game just compares colour-census-free
   cardinalities each round; sanity-check it against bare sets. *)
let test_counting_sets () =
  checkb "equal sets equivalent" true
    (Counting_game.duplicator_wins ~pebbles:1 ~rounds:5 (Gen.set 4)
       (Gen.set 4));
  checkb "different sizes distinguished at rank 1" false
    (Counting_game.duplicator_wins ~pebbles:1 ~rounds:1 (Gen.set 3)
       (Gen.set 4));
  checkb "rank 0 cannot count" true
    (Counting_game.duplicator_wins ~pebbles:2 ~rounds:0 (Gen.set 3)
       (Gen.set 4))

(* C_6 vs C_3 ⊎ C_3: the classic C^2/C^3 separation. The counting game
   with 2 pebbles never distinguishes them (they are C^2-equivalent);
   with 3 pebbles it does at small rank. *)
let test_counting_cycles () =
  let a = Gen.cycle 6 and b = Gen.union_of [ Gen.cycle 3; Gen.cycle 3 ] in
  checkb "C6 vs C3+C3: 2-pebble counting game blind" true
    (Counting_game.duplicator_wins ~pebbles:2 ~rounds:4 a b);
  checkb "C6 vs C3+C3: 3-pebble counting game sees" false
    (Counting_game.duplicator_wins ~pebbles:3 ~rounds:6 a b);
  checkb "1-WL blind on the pair" true (Wl.equiv ~k:1 a b);
  checkb "2-WL sees the pair" false (Wl.equiv ~k:2 a b)

(* ---------- CFI pairs: the certificate bench E26 regenerates ---------- *)

let test_cfi_certificate () =
  List.iter
    (fun m ->
      let u, t = Gen.cfi_pair m in
      checkb
        (Printf.sprintf "cfi m=%d: same size" m)
        true
        (Structure.size u = Structure.size t);
      checkb
        (Printf.sprintf "cfi m=%d: non-isomorphic" m)
        false (Iso.isomorphic u t);
      (* Untwisted ≅ C_m ⊎ C_m, twisted ≅ C_2m. *)
      checkb
        (Printf.sprintf "cfi m=%d: component counts 2 vs 1" m)
        true
        (Graph.component_count u = 2 && Graph.component_count t = 1);
      checkb
        (Printf.sprintf "cfi m=%d: 1-WL blind" m)
        true (Wl.equiv ~k:1 u t);
      checkb
        (Printf.sprintf "cfi m=%d: 2-WL sees" m)
        false (Wl.equiv ~k:2 u t))
    [ 3; 4; 5 ];
  (* Game-level certificate on the smallest pair: C^2 blind at every
     tested rank, C^3 distinguishes. *)
  let u, t = Gen.cfi_pair 3 in
  checkb "cfi m=3: 2-pebble counting game blind" true
    (Counting_game.duplicator_wins ~pebbles:2 ~rounds:4 u t);
  checkb "cfi m=3: 3-pebble counting game sees" false
    (Counting_game.duplicator_wins ~pebbles:3 ~rounds:8 u t)

(* ---------- Budgets never flip verdicts ---------- *)

let prop_budget_never_flips =
  QCheck2.Test.make ~count:80 ~name:"budgeted runs never flip a verdict"
    QCheck2.Gen.(pair gen_pair (int_range 1 50))
    (fun ((a, b), fuel) ->
      let reference = oracle_ef ~rounds:3 a b in
      let budget = Budget.create ~fuel ~poll_interval:1 () in
      (match Ef.solve_verdict ~budget ~rounds:3 a b with
      | Ef.Equivalent, _ ->
          if not reference then QCheck2.Test.fail_report "EF flipped to equiv"
      | Ef.Distinguished, _ ->
          if reference then QCheck2.Test.fail_report "EF flipped to dist"
      | Ef.Gave_up _, _ -> ());
      let budget = Budget.create ~fuel ~poll_interval:1 () in
      (match Counting_game.solve_verdict ~budget ~pebbles:2 ~rounds:2 a b with
      | Counting_game.Equivalent, _ ->
          if not (Counting_game.duplicator_wins ~pebbles:2 ~rounds:2 a b) then
            QCheck2.Test.fail_report "counting game flipped to equiv"
      | Counting_game.Distinguished, _ ->
          if Counting_game.duplicator_wins ~pebbles:2 ~rounds:2 a b then
            QCheck2.Test.fail_report "counting game flipped to dist"
      | Counting_game.Gave_up _, _ -> ());
      true)

(* ---------- API parity across the engine instances ---------- *)

(* The stats and verdict types of all three instances are equations with
   the kernel's — interchangeable at compile time. *)
let _ : Pebble.verdict -> Ef.verdict = Fun.id
let _ : Counting_game.verdict -> Engine.verdict = Fun.id
let _ : Pebble.stats -> Ef.stats = Fun.id
let _ : Counting_game.stats -> Engine.stats = Fun.id

let test_api_parity () =
  (* Pebble exposes the same budgeted-verdict surface as Ef and reports
     worker counts the same way. *)
  let a = Gen.cycle 5 and b = Gen.cycle 6 in
  let v_ef, (s_ef : Ef.stats) = Ef.solve_verdict ~rounds:2 a b in
  let v_pb, (s_pb : Pebble.stats) =
    Pebble.solve_verdict ~pebbles:2 ~rounds:2 a b
  in
  checkb "both decided" true
    ((match v_ef with Ef.Gave_up _ -> false | _ -> true)
    && match v_pb with Pebble.Gave_up _ -> false | _ -> true);
  checkb "stats populated" true (s_ef.workers >= 1 && s_pb.workers >= 1);
  (* A forced multi-worker pebble solve agrees with the sequential one. *)
  let big = Gen.union_of [ Gen.path 3; Gen.path 3 ] in
  let seq =
    Pebble.duplicator_wins
      ~config:{ Pebble.default_config with workers = Some 1 }
      ~pebbles:2 ~rounds:3 big (Gen.path 6)
  in
  let par =
    Pebble.duplicator_wins
      ~config:{ Pebble.default_config with workers = Some 4 }
      ~pebbles:2 ~rounds:3 big (Gen.path 6)
  in
  checkb "pebble parallel = sequential" seq par;
  (* The kernel's worker policy is shared: forcing workers overrides. *)
  checkb "worker_count honours override" true
    (Engine.worker_count
       { Engine.default_config with workers = Some 5 }
       ~depth_hint:1 ~moves:10
    = 5)

(* ---------- Parallel vs sequential: the differential suite ---------- *)

(* The parallel path is a different machine (work-stealing deques, a
   claim-based shared memo, pooled domains) computing the same
   function; these tests pin the agreement down across worker counts,
   orbit pruning, and injected faults. Verdicts must be identical
   everywhere. Position counts are exactly sequential at workers=1
   (the forced fast path) and on fully-equivalent runs at any worker
   count (no conjunct fails, so no speculation is ever cut short and
   the claimed-position set is the sequential explored set). *)

let worker_grid = [ 1; 2; 4; 8 ]

let par_pairs =
  [
    ("L6 vs L8", Gen.linear_order 6, Gen.linear_order 8, false);
    ("L8 vs L8", Gen.linear_order 8, Gen.linear_order 8, true);
    ( "C6 vs C3+C3",
      Gen.cycle 6,
      Gen.union_of [ Gen.cycle 3; Gen.cycle 3 ],
      false );
  ]

let test_parallel_differential () =
  List.iter
    (fun (name, a, b, equivalent) ->
      List.iter
        (fun orbit ->
          let config w =
            { Ef.default_config with workers = Some w; orbit }
          in
          let seq_v, (seq_s : Ef.stats) =
            Ef.solve ~config:(config 1) ~rounds:3 a b
          in
          checkb (name ^ ": sequential verdict") equivalent seq_v;
          List.iter
            (fun w ->
              let tag =
                Printf.sprintf "%s orbit=%b workers=%d" name orbit w
              in
              let v, (s : Ef.stats) = Ef.solve ~config:(config w) ~rounds:3 a b in
              checkb (tag ^ ": verdict identical") seq_v v;
              checkb
                (tag ^ ": effective worker count")
                true
                (s.workers = if w = 1 then 1 else w);
              if w = 1 || equivalent then
                checkb
                  (Printf.sprintf "%s: positions %d = sequential %d" tag
                     s.positions seq_s.positions)
                  true
                  (s.positions = seq_s.positions))
            worker_grid)
        [ true; false ])
    par_pairs;
  (* Same grid, pebble game: a second expand/tasks implementation
     through the same kernel. *)
  let a = Gen.union_of [ Gen.path 3; Gen.path 3 ] and b = Gen.path 6 in
  List.iter
    (fun orbit ->
      let config w = { Pebble.default_config with workers = Some w; orbit } in
      let seq = Pebble.solve ~config:(config 1) ~pebbles:2 ~rounds:3 a b in
      List.iter
        (fun w ->
          let par = Pebble.solve ~config:(config w) ~pebbles:2 ~rounds:3 a b in
          checkb
            (Printf.sprintf "pebble orbit=%b workers=%d: verdict" orbit w)
            (fst seq) (fst par))
        worker_grid)
    [ true; false ]

let test_parallel_fault_injection () =
  let a = Gen.linear_order 8 and b = Gen.linear_order 8 in
  List.iter
    (fun orbit ->
      List.iter
        (fun w ->
          let config = { Ef.default_config with workers = Some w; orbit } in
          let tag = Printf.sprintf "orbit=%b workers=%d" orbit w in
          (* A worker domain dying with an unrelated exception must
             re-raise at the coordinator — never be swallowed, never be
             masked by a secondary budget exhaustion parked by another
             worker. *)
          let budget =
            Budget.create ~inject:Budget.Raise_in_worker ~poll_interval:1 ()
          in
          (match Ef.solve_verdict ~config ~budget ~rounds:3 a b with
          | exception Budget.Injected_fault ->
              checkb (tag ^ ": fault only from spawned workers") true (w > 1)
          | v, _ ->
              if w > 1 then Alcotest.fail (tag ^ ": worker fault swallowed")
              else checkb (tag ^ ": sequential unaffected") true (v = Ef.Equivalent));
          (* The shared memo of a faulted solve dies with it: a clean
             re-solve in the same process (same pooled domains) is
             correct. *)
          checkb
            (tag ^ ": verdict correct after worker death")
            true
            (Ef.duplicator_wins ~config ~rounds:3 a b);
          (* Cancellation mid-search: the answer is the truth or a
             cancelled gave-up, never a flip — and never a wrong
             gave-up reason. *)
          List.iter
            (fun k ->
              let budget = Budget.create ~inject:(Budget.Cancel_at k) () in
              (match Ef.solve_verdict ~config ~budget ~rounds:3 a b with
              | Ef.Gave_up Budget.Cancelled, _ -> ()
              | Ef.Gave_up r, _ ->
                  Alcotest.failf "%s: cancel surfaced as %s" tag
                    (Budget.reason_to_string r)
              | v, _ ->
                  checkb (tag ^ ": no flip under cancellation") true
                    (v = Ef.Equivalent));
              checkb
                (tag ^ ": verdict correct after cancellation")
                true
                (Ef.duplicator_wins ~config ~rounds:3 a b))
            [ 1; 5; 50 ])
        worker_grid)
    [ true; false ]

let test_worker_count_policy () =
  let cfg workers = { Engine.default_config with workers } in
  (* Forcing is no longer clamped by the root frontier: splitting
     regenerates work below the root. *)
  checkb "forced 8 on 2 root moves" true
    (Engine.worker_count (cfg (Some 8)) ~depth_hint:3 ~moves:2 = 8);
  (* ...but one obligation means nothing to hand out, ever. *)
  checkb "single obligation stays sequential" true
    (Engine.worker_count (cfg (Some 8)) ~depth_hint:3 ~moves:1 = 1);
  checkb "depth 0 stays sequential" true
    (Engine.worker_count (cfg (Some 8)) ~depth_hint:0 ~moves:10 = 1);
  checkb "parallel off wins over forcing" true
    (Engine.worker_count
       { (cfg (Some 8)) with parallel = false }
       ~depth_hint:3 ~moves:10
    = 1);
  (* The automatic policy never exceeds the hardware. *)
  checkb "auto caps at the machine" true
    (Engine.worker_count (cfg None) ~depth_hint:3 ~moves:10
    <= min 8 (Domain.recommended_domain_count ()))

let qsuite = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "fmtk_engine"
    [
      ( "differential",
        qsuite [ prop_ef_matches_oracle; prop_pebble_matches_oracle ] );
      ( "counting",
        qsuite [ prop_counting_vs_kwl ]
        @ [
            Alcotest.test_case "sets" `Quick test_counting_sets;
            Alcotest.test_case "cycles" `Quick test_counting_cycles;
          ] );
      ("cfi", [ Alcotest.test_case "certificate" `Quick test_cfi_certificate ]);
      ("budget", qsuite [ prop_budget_never_flips ]);
      ( "parallel",
        [
          Alcotest.test_case "parallel = sequential" `Quick
            test_parallel_differential;
          Alcotest.test_case "fault injection" `Quick
            test_parallel_fault_injection;
          Alcotest.test_case "worker policy" `Quick test_worker_count_policy;
        ] );
      ("parity", [ Alcotest.test_case "api" `Quick test_api_parity ]);
    ]
